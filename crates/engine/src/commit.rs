//! Group-commit pipeline: the durable write path of a file-backed
//! [`crate::Database`] (ISSUE 9 tentpole).
//!
//! ### Leader/follower commit
//!
//! Concurrent writers **stage** their encoded WAL frames into a shared
//! in-memory commit queue *while still holding the catalog write lock* —
//! that is what keeps log order equal to mutation order — then release
//! their engine locks and **wait** for the covering fsync. The first
//! waiter to take the WAL mutex and find its ticket not yet durable
//! becomes the **leader**: it drains the queue, writes every staged frame
//! with a single `write_all` + one `sync_data`
//! ([`Wal::append_payload_batch`]), and publishes the new durable
//! watermark. A commit is acked (its `insert`/`delete`/`update` call
//! returns) **only after a covering fsync**, so the WAL-before-data
//! guarantee of PR 7 is unchanged; what changed is that one fsync now
//! covers every commit that queued up behind it.
//!
//! The handoff needs no condvar, and — crucially — followers never
//! *block on* the WAL mutex. The leader publishes the clean durable
//! watermark in an atomic *after* the covering fsync; a waiter polls that
//! watermark, and only `try_lock`s the mutex to lead a batch itself. A
//! covered follower therefore acks and goes on to stage its next commit
//! while the current leader is still lingering or inside `sync_data`,
//! and an uncovered one snoozes off-mutex (bounded yield, then a timed
//! park) until its batch is decided. That is what lets batches form even
//! on a machine with fewer cores than writers: if acking — or waking a
//! parked waiter — required the mutex, a lingering leader would hold
//! every other writer hostage and batches would never exceed one frame.
//! The fsync-before-publish obligation is the model-checked protocol
//! (`aib_model::protocols::CommitQueueModel`, protocol 7).
//!
//! ### Window knobs
//!
//! With [`crate::EngineConfig::group_commit_wait_us`]` = 0` (the default)
//! the leader never lingers: a single uncontended writer stages one frame
//! and immediately writes + fsyncs it — bit-for-bit the fsync-per-record
//! behavior of PR 7 (same syscall sequence, same on-disk bytes). Batches
//! still form naturally under contention, because writers that stage while
//! a leader is inside `sync_data` are drained together by the next leader.
//! A nonzero window makes the leader sleep that many microseconds before
//! draining, trading its own latency for a larger batch; the wait is
//! skipped (and the drain is capped) once the staged payload bytes reach
//! [`crate::EngineConfig::group_commit_max_bytes`].
//!
//! ### Failure semantics
//!
//! A batch that fails mid-write (crash injection, real I/O error) acks its
//! durable prefix and fails every ticket from the first lost frame on; the
//! WAL is poisoned from that point (appended frames would be unreachable
//! behind the torn one), so later commits also fail — until a checkpoint
//! rotates in a fresh log, which supersedes the failure wholesale (the
//! snapshot covers the applied-but-unlogged mutations, exactly as it does
//! for PR 7's failed single appends).
//!
//! ### Off-path checkpointing
//!
//! The leader only *counts* records toward
//! [`crate::EngineConfig::wal_checkpoint_interval`]; when the interval
//! trips it flags the background checkpointer thread (spawned by
//! [`crate::Database::open`]) and moves on, so rotation no longer stalls
//! the commit that happened to cross the threshold. This lock is a leaf of
//! the engine hierarchy like PR 7's `Durability` mutex: commits wait on it
//! only *after* releasing the catalog and shard locks, and the
//! checkpointer takes it only *after* taking the catalog write lock, so
//! the order catalog → shard(i) → pool → commit is acyclic.

use std::time::{Duration, Instant};

use aib_core::sync::{AtomicU64, Mutex, Ordering};
use aib_storage::{StorageError, Wal, WalRecord};

/// The last ticket of the contiguous range one [`CommitPipeline::stage`]
/// call was assigned, to be passed to [`CommitPipeline::wait_durable`].
/// Tickets are handed out in mutation order (staging happens under the
/// catalog write lock) and become durable in ticket order, so the range's
/// last ticket decides the whole range.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Ticket {
    last: u64,
}

/// One staged, not-yet-durable WAL frame payload.
struct StagedFrame {
    seq: u64,
    payload: Vec<u8>,
}

/// The shared commit queue: staged frames plus the ticket counter.
struct CommitQueue {
    next_seq: u64,
    staged: Vec<StagedFrame>,
    /// Total payload bytes currently staged (what the byte cap meters).
    bytes: usize,
}

/// Everything guarded by the WAL mutex: the log itself plus the durable /
/// failed watermarks the leader publishes and followers read.
struct WalState {
    wal: Wal,
    /// Records appended since the last checkpoint rotation.
    since_checkpoint: u64,
    /// Highest ticket whose outcome is decided (durable or failed).
    /// Followers whose ticket is covered stop waiting.
    durable_seq: u64,
    /// First ticket lost to a failed batch, with the error every affected
    /// waiter reports. Cleared by rotation (the checkpoint snapshot
    /// supersedes the poisoned log).
    failed: Option<(u64, StorageError)>,
}

/// The group-commit pipeline of one durable [`crate::Database`]. See the
/// module docs for the protocol.
pub(crate) struct CommitPipeline {
    queue: Mutex<CommitQueue>,
    wal: Mutex<WalState>,
    /// Highest ticket that is durable *and clean* (no failed record at or
    /// below it), published with `Release` after the covering fsync so
    /// followers can ack with a single `Acquire` load — no WAL mutex.
    /// Tickets above it take the locked path, where `WalState::failed`
    /// disambiguates "not yet decided" from "lost".
    clean_durable: AtomicU64,
    /// Leader linger before draining, in microseconds (0 = never).
    wait_us: u64,
    /// Staged-payload byte cap: skips the linger and bounds one batch.
    max_bytes: usize,
    /// Records between automatic checkpoints.
    checkpoint_interval: u64,
    /// 1 when a periodic checkpoint is due (leaders set, checkpointer
    /// clears).
    checkpoint_due: AtomicU64,
    /// 1 once the owning database is shutting down.
    shutdown: AtomicU64,
    /// Followers parked off-mutex in [`CommitPipeline::wait_durable`],
    /// unparked after every publish. Waking is a hint, not a handoff —
    /// every park is timed, so a racing lost unpark only costs the
    /// backstop interval.
    waiters: Mutex<Vec<std::thread::Thread>>,
    /// The background checkpointer to unpark when the interval trips.
    checkpointer: Mutex<Option<std::thread::Thread>>,
    /// The last background checkpoint failure, surfaced by
    /// [`crate::Database::close`].
    background_error: Mutex<Option<String>>,
}

impl CommitPipeline {
    /// A pipeline over an open WAL that already holds `since_checkpoint`
    /// records (replayed at open).
    pub fn new(
        wal: Wal,
        since_checkpoint: u64,
        wait_us: u64,
        max_bytes: usize,
        checkpoint_interval: u64,
    ) -> Self {
        CommitPipeline {
            queue: Mutex::new(CommitQueue {
                next_seq: 1,
                staged: Vec::new(),
                bytes: 0,
            }),
            wal: Mutex::new(WalState {
                wal,
                since_checkpoint,
                durable_seq: 0,
                failed: None,
            }),
            clean_durable: AtomicU64::new(0),
            wait_us,
            max_bytes: max_bytes.max(1),
            checkpoint_interval,
            checkpoint_due: AtomicU64::new(0),
            shutdown: AtomicU64::new(0),
            waiters: Mutex::new(Vec::new()),
            checkpointer: Mutex::new(None),
            background_error: Mutex::new(None),
        }
    }

    /// Stages encoded frames for `records` on the commit queue, returning
    /// the ticket to wait on ([`None`] for an empty record set). Call this
    /// while still holding the catalog write lock of the mutation the
    /// records describe, so ticket order is mutation order; wait *after*
    /// releasing it, so other writers can stage into the same batch.
    pub fn stage(&self, records: &[WalRecord]) -> Option<Ticket> {
        if records.is_empty() {
            return None;
        }
        let mut q = self.queue.lock();
        for record in records {
            let payload = record.encode();
            let seq = q.next_seq;
            q.next_seq += 1;
            q.bytes += payload.len();
            q.staged.push(StagedFrame { seq, payload });
        }
        Some(Ticket {
            last: q.next_seq - 1,
        })
    }

    /// Blocks until every record of `ticket` has a decided outcome,
    /// leading batches as needed (leader/follower handoff — see the module
    /// docs). `Ok` means a covering fsync landed for the whole ticket
    /// range; `Err` means at least one record was lost (a durable prefix
    /// of the range may still replay after a crash).
    pub fn wait_durable(&self, ticket: Ticket) -> Result<(), StorageError> {
        loop {
            // Lock-free ack: the clean watermark is published after the
            // covering fsync, so a covered follower returns without ever
            // touching the WAL mutex.
            if self.clean_durable.load(Ordering::Acquire) >= ticket.last {
                return Ok(());
            }
            let Some(mut w) = self.wal.try_lock() else {
                // A leader is at work and our frame is already staged for
                // its (or the next) batch. Wait *off* the mutex: if we
                // blocked inside `lock()`, waking us would need the mutex
                // back, and the next leader's linger would hold every
                // covered follower hostage — batches would never form.
                // First a bounded yield-spin sized to a typical fsync, so
                // the publish is caught the moment it lands (a park/unpark
                // round-trip costs tens of microseconds of pipeline stall
                // per batch); only then a timed park. Register first,
                // re-check, then park: a publish that races ahead of the
                // registration is caught by the re-check, one that races
                // behind it unparks us.
                let spin_deadline = Instant::now() + Duration::from_micros(200);
                let mut covered = false;
                while Instant::now() < spin_deadline {
                    std::thread::yield_now();
                    if self.clean_durable.load(Ordering::Acquire) >= ticket.last {
                        covered = true;
                        break;
                    }
                }
                if !covered {
                    self.waiters.lock().push(std::thread::current());
                    if self.clean_durable.load(Ordering::Acquire) < ticket.last {
                        std::thread::park_timeout(Duration::from_micros(200));
                    }
                }
                continue;
            };
            if w.durable_seq >= ticket.last {
                // Decided but not clean: only a failed batch leaves this
                // gap, so consult the failure watermark under the mutex.
                return match &w.failed {
                    Some((from, error)) if ticket.last >= *from => Err(error.clone()),
                    _ => Ok(()),
                };
            }
            self.lead(&mut w);
            drop(w);
            self.wake_waiters();
        }
    }

    /// Unparks every registered follower after a publish. Followers that
    /// are not yet covered simply re-register and re-park.
    fn wake_waiters(&self) {
        for thread in self.waiters.lock().drain(..) {
            thread.unpark();
        }
    }

    /// One leader turn: optionally linger for followers, drain a batch off
    /// the queue, write it with one `write_all` + one `sync_data`, and
    /// publish the outcome. Runs with the WAL mutex held — followers block
    /// on that mutex and are woken by its release.
    fn lead(&self, w: &mut WalState) {
        if self.wait_us > 0 {
            // The group-commit window: stagers only need the queue mutex,
            // so they keep queueing while the leader (holding only the WAL
            // mutex) lingers. Yield instead of sleeping — `thread::sleep`
            // oversleeps by the kernel timer slack (~50µs), which would
            // both stretch the window and serialize it before the fsync;
            // yielding keeps the window honest and hands the CPU to the
            // very stagers the leader is collecting.
            let deadline = Instant::now() + Duration::from_micros(self.wait_us);
            while Instant::now() < deadline {
                if self.queue.lock().bytes >= self.max_bytes {
                    break;
                }
                std::thread::yield_now();
            }
        }
        let batch: Vec<StagedFrame> = {
            let mut q = self.queue.lock();
            let mut cut = 0;
            let mut bytes = 0;
            for frame in &q.staged {
                if cut > 0 && bytes + frame.payload.len() > self.max_bytes {
                    break;
                }
                bytes += frame.payload.len();
                cut += 1;
            }
            q.bytes -= bytes;
            q.staged.drain(..cut).collect()
        };
        let (Some(first), Some(last)) = (batch.first().map(|f| f.seq), batch.last().map(|f| f.seq))
        else {
            return;
        };
        let payloads: Vec<&[u8]> = batch.iter().map(|f| f.payload.as_slice()).collect();
        let before = w.wal.records_written();
        let outcome = w.wal.append_payload_batch(&payloads);
        let appended = w.wal.records_written() - before;
        w.since_checkpoint += appended;
        if let Err(error) = outcome {
            // Tickets below `first + appended` were covered by a successful
            // fsync and may ack; everything from there on is lost.
            if w.failed.is_none() {
                w.failed = Some((first + appended, error));
            }
        }
        // Publish last (not first + appended) even on failure: the whole
        // batch is *decided*, which is what waiters poll for. The atomic
        // clean watermark stops just short of the first failed ticket, so
        // the lock-free ack path can never return Ok for a lost record.
        w.durable_seq = last;
        let clean = match &w.failed {
            Some((from, _)) => last.min(from.saturating_sub(1)),
            None => last,
        };
        self.clean_durable.store(clean, Ordering::Release);
        if w.since_checkpoint >= self.checkpoint_interval {
            self.request_checkpoint();
        }
    }

    /// Drains and writes everything staged (checkpoint prelude: the caller
    /// holds the catalog write lock, so no new frames can appear). Waiters
    /// of the drained tickets are acked or failed exactly as if a leader
    /// had drained them.
    pub fn flush(&self) {
        loop {
            let mut w = self.wal.lock();
            if self.queue.lock().staged.is_empty() {
                return;
            }
            self.lead(&mut w);
            drop(w);
            self.wake_waiters();
        }
    }

    /// Rotates the WAL to a fresh log holding only `snapshot`, resetting
    /// the checkpoint counter and clearing any poisoned-log failure (the
    /// snapshot supersedes the lost records — their mutations are in the
    /// heap image it describes).
    pub fn rotate(&self, snapshot: &WalRecord) -> Result<(), StorageError> {
        {
            let mut w = self.wal.lock();
            w.wal.rotate(snapshot)?;
            w.since_checkpoint = 0;
            w.failed = None;
            // The snapshot covers every decided ticket, failed or not, so
            // the clean watermark catches up to the decided watermark.
            self.clean_durable.store(w.durable_seq, Ordering::Release);
        }
        self.wake_waiters();
        Ok(())
    }

    /// Records appended to the WAL (see [`crate::Database::wal_records_written`]).
    pub fn records_written(&self) -> u64 {
        self.wal.lock().wal.records_written()
    }

    /// Successful covering fsyncs issued by the WAL.
    pub fn wal_syncs(&self) -> u64 {
        self.wal.lock().wal.syncs()
    }

    /// Crash-injection hook: fail the append that would become record
    /// `records_written() + n`.
    pub fn fail_after(&self, n: u64) {
        let mut w = self.wal.lock();
        let at = w.wal.records_written() + n;
        w.wal.set_fail_at(at);
    }

    // ------------------------------------------- background checkpointing

    /// Registers the checkpointer thread to unpark on
    /// [`CommitPipeline::request_checkpoint`].
    pub fn register_checkpointer(&self, thread: std::thread::Thread) {
        *self.checkpointer.lock() = Some(thread);
    }

    /// Flags a periodic checkpoint as due and wakes the checkpointer.
    fn request_checkpoint(&self) {
        self.checkpoint_due.store(1, Ordering::Release);
        if let Some(t) = self.checkpointer.lock().as_ref() {
            t.unpark();
        }
    }

    /// Consumes the due flag (checkpointer side).
    pub fn take_checkpoint_due(&self) -> bool {
        self.checkpoint_due.swap(0, Ordering::AcqRel) == 1
    }

    /// Tells the checkpointer thread to exit and wakes it.
    pub fn shutdown(&self) {
        self.shutdown.store(1, Ordering::Release);
        if let Some(t) = self.checkpointer.lock().as_ref() {
            t.unpark();
        }
    }

    /// Whether [`CommitPipeline::shutdown`] was called.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire) == 1
    }

    /// Stores a background checkpoint failure for
    /// [`CommitPipeline::take_background_error`].
    pub fn record_background_error(&self, message: String) {
        self.background_error.lock().get_or_insert(message);
    }

    /// Takes the oldest unreported background checkpoint failure, if any.
    pub fn take_background_error(&self) -> Option<String> {
        self.background_error.lock().take()
    }
}

/// Body of the background checkpointer thread: sleep until flagged (or a
/// coarse fallback tick), run `checkpoint`, repeat until shutdown. Failures
/// are recorded, not fatal — the interval counter was not reset, so the
/// next flag retries.
pub(crate) fn checkpointer_loop<F>(pipeline: &CommitPipeline, checkpoint: F)
where
    F: Fn() -> Result<(), String>,
{
    loop {
        if pipeline.is_shutdown() {
            return;
        }
        if pipeline.take_checkpoint_due() {
            if let Err(message) = checkpoint() {
                pipeline.record_background_error(message);
            }
            continue;
        }
        // The fallback tick covers a request racing just ahead of the
        // park (unpark tokens make the common case immediate).
        std::thread::park_timeout(Duration::from_millis(25));
    }
}
