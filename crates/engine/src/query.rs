//! Query model: single-column predicates against a named table column, the
//! shape of the paper's evaluation workload.

use aib_core::Predicate;
use aib_storage::{Rid, Value};

/// A query against one column of one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// Target table.
    pub table: String,
    /// Queried column name.
    pub column: String,
    /// The predicate `q`.
    pub predicate: Predicate,
}

impl Query {
    /// Starts a fluent query against `table.column`; finish it with
    /// [`QueryBuilder::eq`] or [`QueryBuilder::between`].
    ///
    /// ```
    /// use aib_engine::Query;
    /// assert_eq!(Query::on("t", "k").eq(42i64), Query::point("t", "k", 42i64));
    /// assert_eq!(
    ///     Query::on("t", "k").between(1i64, 9i64),
    ///     Query::range("t", "k", 1i64, 9i64),
    /// );
    /// ```
    pub fn on(table: impl Into<String>, column: impl Into<String>) -> QueryBuilder {
        QueryBuilder {
            table: table.into(),
            column: column.into(),
        }
    }

    /// `SELECT * FROM table WHERE column = value`.
    pub fn point(
        table: impl Into<String>,
        column: impl Into<String>,
        value: impl Into<Value>,
    ) -> Self {
        Query {
            table: table.into(),
            column: column.into(),
            predicate: Predicate::Equals(value.into()),
        }
    }

    /// `SELECT * FROM table WHERE column BETWEEN lo AND hi`.
    pub fn range(
        table: impl Into<String>,
        column: impl Into<String>,
        lo: impl Into<Value>,
        hi: impl Into<Value>,
    ) -> Self {
        Query {
            table: table.into(),
            column: column.into(),
            predicate: Predicate::Between(lo.into(), hi.into()),
        }
    }
}

/// A table/column pair waiting for its predicate — created by
/// [`Query::on`].
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    table: String,
    column: String,
}

impl QueryBuilder {
    /// Finishes the query with `column = value`.
    pub fn eq(self, value: impl Into<Value>) -> Query {
        Query {
            table: self.table,
            column: self.column,
            predicate: Predicate::Equals(value.into()),
        }
    }

    /// Finishes the query with `lo <= column <= hi`.
    pub fn between(self, lo: impl Into<Value>, hi: impl Into<Value>) -> Query {
        Query {
            table: self.table,
            column: self.column,
            predicate: Predicate::Between(lo.into(), hi.into()),
        }
    }
}

/// How a query was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPath {
    /// Served by the partial index (a "hit").
    PartialIndex,
    /// Indexing table scan with Index Buffer support (Algorithm 1).
    BufferedScan,
    /// Full table scan (no buffer configured for the column).
    PlainScan,
}

/// Result of executing a query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Record ids of matching tuples.
    pub rids: Vec<Rid>,
    /// Which access path answered it.
    pub path: AccessPath,
}

impl QueryResult {
    /// Number of matches.
    pub fn count(&self) -> usize {
        self.rids.len()
    }
}

/// Everything one [`Database::execute`](crate::db::Database::execute) call
/// produced: the result set and its instrumentation.
///
/// Replaces the old `(QueryResult, QueryMetrics)` tuple so the two halves
/// can't be mixed up across calls; [`ExecOutcome::into_parts`] recovers the
/// tuple form where destructuring is more convenient.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// The matching rids and the access path that found them.
    pub result: QueryResult,
    /// Per-query instrumentation (Figures 6–9 series).
    pub metrics: crate::metrics::QueryMetrics,
}

impl ExecOutcome {
    /// Splits the outcome into the former `(result, metrics)` tuple.
    pub fn into_parts(self) -> (QueryResult, crate::metrics::QueryMetrics) {
        (self.result, self.metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let q = Query::point("flights", "airport", "FRA");
        assert_eq!(q.predicate, Predicate::Equals(Value::from("FRA")));
        let q = Query::range("t", "a", 1i64, 9i64);
        assert_eq!(
            q.predicate,
            Predicate::Between(Value::Int(1), Value::Int(9))
        );
    }
}
