//! Engine-level error type.
//!
//! Storage failures (I/O, corruption, pool exhaustion) stay
//! [`StorageError`]s, but the engine adds failure modes of its own — names
//! that don't resolve, indexes that don't exist. [`EngineError`] is the
//! single error type every public [`Database`](crate::db::Database) method
//! returns, so callers can match catalog mistakes without digging through
//! stringly-typed storage errors.

use std::fmt;

use aib_storage::StorageError;

/// Errors produced by the engine's public API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A storage-layer failure bubbled up unchanged.
    Storage(StorageError),
    /// The named table does not exist.
    UnknownTable(String),
    /// The named column does not exist in the table's schema.
    UnknownColumn(String),
    /// The table/column pair has no partial index to operate on.
    NoSuchIndex(String),
    /// A table of that name already exists.
    TableExists(String),
    /// The column already has a partial index.
    IndexExists(String),
    /// The operation is not supported for the target's configuration
    /// (e.g. attaching a tuner to a non-`Coverage::Set` index).
    Unsupported(String),
    /// An internal invariant did not hold. Seeing this is a bug: it replaces
    /// what would have been a panic in library code.
    Internal(String),
    /// The runtime shadow model (`invariant-checks` feature) found the
    /// engine's bookkeeping out of agreement with recomputed ground truth.
    Invariant(String),
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
            EngineError::UnknownTable(name) => write!(f, "unknown table {name:?}"),
            EngineError::UnknownColumn(name) => write!(f, "unknown column {name:?}"),
            EngineError::NoSuchIndex(name) => write!(f, "no partial index on {name}"),
            EngineError::TableExists(name) => write!(f, "table {name:?} already exists"),
            EngineError::IndexExists(name) => write!(f, "column {name} is already indexed"),
            EngineError::Unsupported(what) => write!(f, "unsupported: {what}"),
            EngineError::Internal(what) => write!(f, "internal invariant violated: {what}"),
            EngineError::Invariant(what) => write!(f, "shadow model disagreement: {what}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

/// Shorthand for engine results.
pub type EngineResult<T> = Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_errors_convert_and_chain() {
        let e: EngineError = StorageError::PoolExhausted.into();
        assert_eq!(e, EngineError::Storage(StorageError::PoolExhausted));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("buffer pool exhausted"));
    }

    #[test]
    fn catalog_errors_display_their_name() {
        assert_eq!(
            EngineError::UnknownTable("t".into()).to_string(),
            "unknown table \"t\""
        );
        assert_eq!(
            EngineError::UnknownColumn("k".into()).to_string(),
            "unknown column \"k\""
        );
        assert!(EngineError::NoSuchIndex("t.k".into())
            .to_string()
            .contains("t.k"));
        assert!(std::error::Error::source(&EngineError::UnknownTable("t".into())).is_none());
    }
}
