//! Per-query instrumentation and workload recording — the measurement
//! harness behind the paper's Figures 6–9.

use std::time::Duration;

use aib_core::{AdaptationStats, ScanStats};
use aib_storage::stats::IoSnapshot;
use aib_storage::BudgetSnapshot;

use crate::query::AccessPath;

/// Everything measured about one executed query.
#[derive(Debug, Clone)]
pub struct QueryMetrics {
    /// 0-based position in the workload.
    pub seq: usize,
    /// Access path taken.
    pub path: AccessPath,
    /// Matching tuples.
    pub result_count: usize,
    /// Physical I/O deltas attributable to this query.
    pub io: IoSnapshot,
    /// Wall-clock execution time.
    pub wall: Duration,
    /// Scan instrumentation, for scan paths.
    pub scan: Option<ScanStats>,
    /// Worker threads the indexing scan actually ran with (1 for sequential
    /// scans and for non-scan paths).
    pub scan_threads: usize,
    /// Entries per Index Buffer after the query (Figures 8 and 9 plot this
    /// series), in buffer-id order.
    pub buffer_entries: Vec<usize>,
    /// Memory-governor counters after the query: bytes resident per
    /// component, combined high-water mark, denied reservations and
    /// displacements performed so far.
    pub memory: BudgetSnapshot,
    /// Adaptation-queue counters after the query (summed across shards):
    /// current depth plus cumulative enqueued / applied / dropped /
    /// rejected batches. All zero outside
    /// [`crate::AdaptationApplyMode::Queued`].
    pub adaptation: AdaptationStats,
}

impl QueryMetrics {
    /// Simulated query cost in microseconds (cost-model charged I/O).
    pub fn simulated_us(&self) -> u64 {
        self.io.simulated_us
    }

    /// Pages skipped by this query's scan (0 for index hits).
    pub fn pages_skipped(&self) -> u32 {
        self.scan.as_ref().map_or(0, |s| s.pages_skipped)
    }

    /// Fully-indexed runs the scan jumped whole (0 for index hits).
    pub fn skip_runs(&self) -> u32 {
        self.scan.as_ref().map_or(0, |s| s.skip_runs)
    }

    /// Batched page-sweep requests the scan's unskipped runs cost (0 for
    /// index hits).
    pub fn sweep_batches(&self) -> u32 {
        self.scan.as_ref().map_or(0, |s| s.sweep_batches)
    }

    /// Pages this query parked on the adaptation queue instead of applying
    /// inline (0 outside queued mode and for non-scan paths).
    pub fn pages_staged(&self) -> u32 {
        self.scan.as_ref().map_or(0, |s| s.pages_staged)
    }
}

/// Collects the per-query series of a workload run.
#[derive(Debug, Default)]
pub struct WorkloadRecorder {
    records: Vec<QueryMetrics>,
}

impl WorkloadRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one query's metrics.
    pub fn push(&mut self, m: QueryMetrics) {
        self.records.push(m);
    }

    /// Records the metrics half of an execution outcome — the idiomatic way
    /// to capture a workload:
    /// `recorder.record(&db.execute(&q)?)`.
    pub fn record(&mut self, outcome: &crate::query::ExecOutcome) {
        self.records.push(outcome.metrics.clone());
    }

    /// All records, in execution order.
    pub fn records(&self) -> &[QueryMetrics] {
        &self.records
    }

    /// Number of recorded queries.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no queries were recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Fraction of queries answered by the partial index within
    /// `[from, to)` — the hit-rate series of Figure 1.
    pub fn hit_rate(&self, from: usize, to: usize) -> f64 {
        let slice = self
            .records
            .get(from.min(self.records.len())..to.min(self.records.len()))
            .unwrap_or_default();
        if slice.is_empty() {
            return 0.0;
        }
        let hits = slice
            .iter()
            .filter(|m| m.path == AccessPath::PartialIndex)
            .count();
        hits as f64 / slice.len() as f64
    }

    /// Renders the series as CSV with one row per query. Columns:
    /// `seq,path,results,pages_read,pages_skipped,skip_runs,sweep_batches,pages_staged,sim_us,wall_us,pool_bytes,index_bytes,mem_high_water,mem_denials,mem_displacements,queue_depth,adapt_applied,adapt_dropped,entries_b0,entries_b1,...`
    pub fn to_csv(&self) -> String {
        let buffers = self
            .records
            .iter()
            .map(|r| r.buffer_entries.len())
            .max()
            .unwrap_or(0);
        let mut out = String::from(
            "seq,path,results,pages_read,pages_skipped,skip_runs,sweep_batches,pages_staged,\
             sim_us,wall_us,pool_bytes,index_bytes,mem_high_water,mem_denials,mem_displacements,\
             queue_depth,adapt_applied,adapt_dropped",
        );
        for b in 0..buffers {
            out.push_str(&format!(",entries_b{b}"));
        }
        out.push('\n');
        for r in &self.records {
            let path = match r.path {
                AccessPath::PartialIndex => "index",
                AccessPath::BufferedScan => "buffered",
                AccessPath::PlainScan => "scan",
            };
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                r.seq,
                path,
                r.result_count,
                r.io.page_reads,
                r.pages_skipped(),
                r.skip_runs(),
                r.sweep_batches(),
                r.pages_staged(),
                r.simulated_us(),
                r.wall.as_micros(),
                r.memory.buffer_pool_bytes,
                r.memory.index_bytes,
                r.memory.high_water,
                r.memory.denials,
                r.memory.displacements,
                r.adaptation.depth,
                r.adaptation.applied,
                r.adaptation.dropped,
            ));
            for b in 0..buffers {
                out.push_str(&format!(
                    ",{}",
                    r.buffer_entries.get(b).copied().unwrap_or(0)
                ));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seq: usize, path: AccessPath) -> QueryMetrics {
        QueryMetrics {
            seq,
            path,
            result_count: 1,
            io: IoSnapshot {
                page_reads: 2,
                simulated_us: 200,
                ..Default::default()
            },
            wall: Duration::from_micros(5),
            scan: None,
            scan_threads: 1,
            buffer_entries: vec![10, 20],
            memory: BudgetSnapshot {
                buffer_pool_bytes: 16_384,
                index_bytes: 960,
                total_limit: None,
                high_water: 17_344,
                denials: 1,
                displacements: 2,
            },
            adaptation: AdaptationStats::default(),
        }
    }

    #[test]
    fn hit_rate_over_window() {
        let mut rec = WorkloadRecorder::new();
        rec.push(record(0, AccessPath::PartialIndex));
        rec.push(record(1, AccessPath::BufferedScan));
        rec.push(record(2, AccessPath::PartialIndex));
        rec.push(record(3, AccessPath::PartialIndex));
        assert_eq!(rec.hit_rate(0, 4), 0.75);
        assert_eq!(rec.hit_rate(0, 2), 0.5);
        assert_eq!(rec.hit_rate(4, 8), 0.0, "out of range is empty");
        assert_eq!(rec.len(), 4);
    }

    #[test]
    fn csv_shape() {
        let mut rec = WorkloadRecorder::new();
        rec.push(record(0, AccessPath::PartialIndex));
        let mut scanned = record(1, AccessPath::BufferedScan);
        scanned.scan = Some(ScanStats {
            pages_skipped: 4,
            skip_runs: 2,
            sweep_batches: 3,
            pages_staged: 1,
            ..Default::default()
        });
        scanned.adaptation = AdaptationStats {
            depth: 1,
            enqueued: 5,
            applied: 3,
            dropped: 1,
            rejected: 0,
        };
        rec.push(scanned);
        let csv = rec.to_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "seq,path,results,pages_read,pages_skipped,skip_runs,sweep_batches,pages_staged,\
             sim_us,wall_us,pool_bytes,index_bytes,mem_high_water,mem_denials,mem_displacements,\
             queue_depth,adapt_applied,adapt_dropped,entries_b0,entries_b1"
        );
        assert_eq!(
            lines.next().unwrap(),
            "0,index,1,2,0,0,0,0,200,5,16384,960,17344,1,2,0,0,0,10,20"
        );
        assert_eq!(
            lines.next().unwrap(),
            "1,buffered,1,2,4,2,3,1,200,5,16384,960,17344,1,2,1,3,1,10,20",
            "scan rows carry the sweep-shape and adaptation-queue columns"
        );
    }

    #[test]
    fn simulated_us_proxies_io() {
        let m = record(0, AccessPath::PlainScan);
        assert_eq!(m.simulated_us(), 200);
        assert_eq!(m.pages_skipped(), 0);
    }
}
