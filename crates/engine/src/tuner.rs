//! The online partial-index tuner — the slow control loop the Index Buffer
//! is designed to back up (paper §I, Fig. 1).
//!
//! The paper's simulated tuning mechanism: "indexes a queried value if it
//! has shown enough potential query cost reduction during the last twenty
//! queries. For simplicity ... a value is assumed to reach the threshold if
//! it was queried at least six times in the monitoring window. Entries are
//! removed from the index based on a least recently used strategy."
//!
//! [`OnlineTuner`] reproduces exactly that: a sliding window of the last `W`
//! queried values, a threshold `θ` of occurrences within the window, and an
//! LRU-ordered covered-value set with a capacity bound. The *decisions* are
//! returned to the caller ([`crate::db::Database`] applies them to the real
//! partial index, with all the cross-structure maintenance that entails);
//! the tuner itself is pure bookkeeping, so the Fig. 1 simulation can also
//! drive it stand-alone.

use std::collections::{HashMap, VecDeque};

use aib_storage::Value;

/// Tuner parameters (paper Fig. 1: `window = 20`, `threshold = 6`).
#[derive(Debug, Clone, Copy)]
pub struct TunerConfig {
    /// `W` — monitoring window length in queries.
    pub window: usize,
    /// `θ` — occurrences within the window that justify indexing a value.
    pub threshold: usize,
    /// Capacity of the covered-value set; LRU eviction beyond it.
    pub capacity: usize,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            window: 20,
            threshold: 6,
            capacity: 15,
        }
    }
}

/// Adaptation decision for one observed query.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TunerDecision {
    /// Value that crossed the threshold and should be added to the partial
    /// index.
    pub add: Option<Value>,
    /// Values evicted (LRU) to make room.
    pub evict: Vec<Value>,
}

impl TunerDecision {
    /// True if nothing changes.
    pub fn is_noop(&self) -> bool {
        self.add.is_none() && self.evict.is_empty()
    }
}

/// Sliding-window, threshold-triggered, LRU-evicting index tuner.
///
/// ```
/// use aib_engine::{OnlineTuner, TunerConfig};
/// use aib_storage::Value;
///
/// let mut tuner = OnlineTuner::new(TunerConfig { window: 10, threshold: 3, capacity: 5 });
/// let hot = Value::Int(7);
/// assert!(tuner.observe(&hot).is_noop());
/// assert!(tuner.observe(&hot).is_noop());
/// // Third occurrence within the window crosses the threshold:
/// let decision = tuner.observe(&hot);
/// assert_eq!(decision.add, Some(hot.clone()));
/// assert!(tuner.is_covered(&hot));
/// ```
#[derive(Debug)]
pub struct OnlineTuner {
    config: TunerConfig,
    window: VecDeque<Value>,
    counts: HashMap<Value, usize>,
    /// Covered values with a recency stamp (larger = more recent).
    covered: HashMap<Value, u64>,
    clock: u64,
}

impl OnlineTuner {
    /// Creates a tuner with the given parameters.
    ///
    /// # Panics
    /// If `window == 0`, `threshold == 0`, or `capacity == 0`.
    pub fn new(config: TunerConfig) -> Self {
        assert!(config.window > 0, "window must be positive");
        assert!(config.threshold > 0, "threshold must be positive");
        assert!(config.capacity > 0, "capacity must be positive");
        OnlineTuner {
            config,
            window: VecDeque::with_capacity(config.window),
            counts: HashMap::new(),
            covered: HashMap::new(),
            clock: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TunerConfig {
        &self.config
    }

    /// Whether `value` is currently covered by the tuned partial index.
    pub fn is_covered(&self, value: &Value) -> bool {
        self.covered.contains_key(value)
    }

    /// Currently covered values (unordered).
    pub fn covered_values(&self) -> impl Iterator<Item = &Value> {
        self.covered.keys()
    }

    /// Number of covered values.
    pub fn covered_len(&self) -> usize {
        self.covered.len()
    }

    /// Observes one queried value and returns the adaptation decision.
    /// Covered values are touched for LRU purposes on every query.
    pub fn observe(&mut self, value: &Value) -> TunerDecision {
        self.clock += 1;
        // Slide the monitoring window.
        self.window.push_back(value.clone());
        *self.counts.entry(value.clone()).or_insert(0) += 1;
        if self.window.len() > self.config.window {
            if let Some(old) = self.window.pop_front() {
                if let Some(c) = self.counts.get_mut(&old) {
                    *c -= 1;
                    if *c == 0 {
                        self.counts.remove(&old);
                    }
                }
            }
        }
        // A hit only refreshes recency.
        if let Some(stamp) = self.covered.get_mut(value) {
            *stamp = self.clock;
            return TunerDecision::default();
        }
        // Threshold check.
        if self.counts.get(value).copied().unwrap_or(0) < self.config.threshold {
            return TunerDecision::default();
        }
        // Index the value; evict LRU values beyond capacity.
        self.covered.insert(value.clone(), self.clock);
        let mut evict = Vec::new();
        while self.covered.len() > self.config.capacity {
            // An over-capacity set is non-empty, so a minimum always exists;
            // the break is unreachable but keeps this loop panic-free.
            let Some(victim) = self
                .covered
                .iter()
                .min_by_key(|(_, &stamp)| stamp)
                .map(|(v, _)| v.clone())
            else {
                break;
            };
            self.covered.remove(&victim);
            evict.push(victim);
        }
        TunerDecision {
            add: Some(value.clone()),
            evict,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: i64) -> Value {
        Value::Int(i)
    }

    fn tuner(window: usize, threshold: usize, capacity: usize) -> OnlineTuner {
        OnlineTuner::new(TunerConfig {
            window,
            threshold,
            capacity,
        })
    }

    #[test]
    fn below_threshold_never_indexes() {
        let mut t = tuner(20, 6, 15);
        for i in 0..100 {
            let d = t.observe(&v(i % 10));
            assert!(d.is_noop(), "2 occurrences per window stays below θ=6");
        }
        assert_eq!(t.covered_len(), 0);
    }

    #[test]
    fn threshold_crossing_indexes_value() {
        let mut t = tuner(20, 6, 15);
        let mut decision = None;
        for i in 0..6 {
            let d = t.observe(&v(7));
            if d.add.is_some() {
                decision = Some((i, d));
            }
        }
        let (at, d) = decision.expect("value must be indexed");
        assert_eq!(at, 5, "indexed exactly on the 6th occurrence");
        assert_eq!(d.add, Some(v(7)));
        assert!(d.evict.is_empty());
        assert!(t.is_covered(&v(7)));
        // Further hits are no-ops.
        assert!(t.observe(&v(7)).is_noop());
    }

    #[test]
    fn window_expiry_resets_counts() {
        let mut t = tuner(10, 6, 15);
        // 5 occurrences, then flood the window with other values.
        for _ in 0..5 {
            t.observe(&v(1));
        }
        for i in 0..10 {
            t.observe(&v(100 + i));
        }
        // The old occurrences have left the window; one more is not enough.
        assert!(t.observe(&v(1)).is_noop());
        assert!(!t.is_covered(&v(1)));
    }

    #[test]
    fn lru_eviction_beyond_capacity() {
        let mut t = tuner(6, 3, 2);
        let index_value = |t: &mut OnlineTuner, val: i64| {
            for _ in 0..3 {
                t.observe(&v(val));
            }
            assert!(t.is_covered(&v(val)), "value {val} indexed");
        };
        index_value(&mut t, 1);
        index_value(&mut t, 2);
        // Touch 1 so 2 becomes LRU.
        t.observe(&v(1));
        // Indexing 3 must evict 2.
        for _ in 0..2 {
            t.observe(&v(3));
        }
        let d = t.observe(&v(3));
        assert_eq!(d.add, Some(v(3)));
        assert_eq!(d.evict, vec![v(2)]);
        assert!(t.is_covered(&v(1)));
        assert!(!t.is_covered(&v(2)));
        assert!(t.is_covered(&v(3)));
        assert_eq!(t.covered_len(), 2);
    }

    #[test]
    fn covered_hit_refreshes_recency_without_decision() {
        let mut t = tuner(6, 2, 1);
        t.observe(&v(1));
        let d = t.observe(&v(1));
        assert_eq!(d.add, Some(v(1)));
        // Hits on the covered value keep it resident.
        for _ in 0..10 {
            assert!(t.observe(&v(1)).is_noop());
        }
        assert!(t.is_covered(&v(1)));
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        tuner(0, 1, 1);
    }
}
