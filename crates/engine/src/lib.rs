//! A mini database engine wiring the Adaptive Index Buffer into a complete
//! query/DML path — the role H2 1.3 played for the paper's prototype.
//!
//! * [`db::Database`] — tables, partial indexes, the Index Buffer Space,
//!   the executor (index hit / indexing scan / plain scan), and DML with
//!   full Table I maintenance.
//! * [`tuner::OnlineTuner`] — the sliding-window, threshold-triggered,
//!   LRU-evicting partial-index tuner of Fig. 1: the slow control loop the
//!   Index Buffer backs up.
//! * [`metrics`] — per-query instrumentation producing the series of
//!   Figures 6–9.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
mod commit;
pub mod db;
mod durability;
pub mod error;
pub mod explain;
pub mod metrics;
pub mod query;
pub mod tuner;

pub use client::ClientHandle;
pub use db::{
    AdaptationApplyMode, BatchOp, Database, EngineConfig, PoolPolicy, ShardRef, Table, TableRef,
};
pub use error::{EngineError, EngineResult};
pub use explain::Explanation;
pub use metrics::{QueryMetrics, WorkloadRecorder};
pub use query::{AccessPath, ExecOutcome, Query, QueryBuilder, QueryResult};
pub use tuner::{OnlineTuner, TunerConfig, TunerDecision};

#[cfg(test)]
mod tests {
    use super::*;
    use aib_core::{BufferConfig, SpaceConfig};
    use aib_index::{Coverage, IndexBackend};
    use aib_storage::{Column, CostModel, Schema, Tuple, Value};

    fn config() -> EngineConfig {
        EngineConfig {
            pool_frames: 64,
            cost_model: CostModel::default(),
            space: SpaceConfig {
                max_bytes: None,
                i_max: 10_000,
                seed: 7,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    /// A small two-column table `t(k INTEGER, pad VARCHAR)` with keys
    /// `0..n`, partial index covering `k < covered_below`, with a buffer.
    fn setup(n: i64, covered_below: i64) -> Database {
        let db = Database::new(config());
        db.create_table("t", Schema::new(vec![Column::int("k"), Column::str("pad")]))
            .unwrap();
        for i in 0..n {
            let t = Tuple::new(vec![Value::Int(i), Value::from("p".repeat(100))]);
            db.insert("t", &t).unwrap();
        }
        db.create_partial_index(
            "t",
            "k",
            Coverage::IntRange {
                lo: 0,
                hi: covered_below - 1,
            },
            IndexBackend::BTree,
            Some(BufferConfig::default()),
        )
        .unwrap();
        db
    }

    #[test]
    fn covered_query_hits_partial_index() {
        let db = setup(500, 100);
        let (r, m) = db
            .execute(&Query::point("t", "k", 42i64))
            .unwrap()
            .into_parts();
        assert_eq!(r.path, AccessPath::PartialIndex);
        assert_eq!(r.count(), 1);
        assert!(m.io.page_reads >= 3, "probe cost charged");
        assert!(m.scan.is_none());
    }

    #[test]
    fn uncovered_query_takes_buffered_scan_then_buffer() {
        let db = setup(500, 100);
        let (r1, m1) = db
            .execute(&Query::point("t", "k", 400i64))
            .unwrap()
            .into_parts();
        assert_eq!(r1.path, AccessPath::BufferedScan);
        assert_eq!(r1.count(), 1);
        let s1 = m1.scan.unwrap();
        let total = db.table("t").unwrap().num_pages();
        // Keys were inserted in order, so leading pages hold only covered
        // tuples and are skippable from the start (paper §II).
        assert_eq!(s1.pages_read + s1.pages_skipped, total);
        assert!(s1.pages_read > 0);
        assert_eq!(s1.entries_added, 400, "uncovered tuples buffered");

        let (r2, m2) = db
            .execute(&Query::point("t", "k", 450i64))
            .unwrap()
            .into_parts();
        let s2 = m2.scan.unwrap();
        assert_eq!(s2.pages_read, 0, "fully buffered table: all pages skipped");
        assert_eq!(r2.count(), 1);
        assert_eq!(s2.buffer_matches, 1);
    }

    #[test]
    fn query_results_match_plain_scan_ground_truth() {
        let db = setup(300, 50);
        // Insert duplicates so results have several rids.
        for _ in 0..5 {
            db.insert("t", &Tuple::new(vec![Value::Int(200), Value::from("dup")]))
                .unwrap();
        }
        let q = Query::point("t", "k", 200i64);
        let (r1, _) = db.execute(&q).unwrap().into_parts();
        let (r2, _) = db.execute(&q).unwrap().into_parts();
        let mut a = r1.rids.clone();
        let mut b = r2.rids.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "scan and buffered answers agree");
        assert_eq!(a.len(), 6);
    }

    #[test]
    fn dml_keeps_buffer_consistent() {
        let db = setup(200, 50);
        // Warm the buffer.
        db.execute(&Query::point("t", "k", 150i64)).unwrap();
        // Insert an uncovered tuple; it must be findable immediately.
        let rid = db
            .insert("t", &Tuple::new(vec![Value::Int(199), Value::from("x")]))
            .unwrap();
        let (r, _) = db
            .execute(&Query::point("t", "k", 199i64))
            .unwrap()
            .into_parts();
        assert!(r.rids.contains(&rid));
        assert_eq!(r.count(), 2);
        // Delete it; it must disappear.
        db.delete("t", rid).unwrap();
        let (r, _) = db
            .execute(&Query::point("t", "k", 199i64))
            .unwrap()
            .into_parts();
        assert_eq!(r.count(), 1);
        // Update a tuple's key from uncovered to covered.
        let victim = r.rids[0];
        db.update(
            "t",
            victim,
            &Tuple::new(vec![Value::Int(10), Value::from("y")]),
        )
        .unwrap();
        let (r, _) = db
            .execute(&Query::point("t", "k", 199i64))
            .unwrap()
            .into_parts();
        assert_eq!(r.count(), 0);
        let (r, m) = db
            .execute(&Query::point("t", "k", 10i64))
            .unwrap()
            .into_parts();
        assert_eq!(m.path, AccessPath::PartialIndex);
        assert_eq!(r.count(), 2, "original k=10 plus the update");
    }

    #[test]
    fn range_queries_work_on_both_paths() {
        let db = setup(300, 100);
        // Fully covered range: index hit.
        let (r, _) = db
            .execute(&Query::range("t", "k", 10i64, 20i64))
            .unwrap()
            .into_parts();
        assert_eq!(r.path, AccessPath::PartialIndex);
        assert_eq!(r.count(), 11);
        // Straddling range: miss -> buffered scan.
        let (r, _) = db
            .execute(&Query::range("t", "k", 90i64, 110i64))
            .unwrap()
            .into_parts();
        assert_eq!(r.path, AccessPath::BufferedScan);
        assert_eq!(r.count(), 21);
        // Repeat: buffer + partial must still produce all 21.
        let (r, m) = db
            .execute(&Query::range("t", "k", 90i64, 110i64))
            .unwrap()
            .into_parts();
        assert_eq!(r.count(), 21);
        assert_eq!(m.scan.unwrap().pages_read, 0);
    }

    #[test]
    fn unindexed_column_plain_scans() {
        let db = Database::new(config());
        db.create_table("t", Schema::new(vec![Column::int("k")]))
            .unwrap();
        for i in 0..50 {
            db.insert("t", &Tuple::new(vec![Value::Int(i)])).unwrap();
        }
        let (r, m) = db
            .execute(&Query::point("t", "k", 7i64))
            .unwrap()
            .into_parts();
        assert_eq!(r.path, AccessPath::PlainScan);
        assert_eq!(r.count(), 1);
        assert!(m.scan.is_none());
    }

    #[test]
    fn tuner_adapts_partial_index_online() {
        let db = Database::new(config());
        db.create_table("t", Schema::new(vec![Column::int("k"), Column::str("pad")]))
            .unwrap();
        for i in 0..200 {
            db.insert(
                "t",
                &Tuple::new(vec![Value::Int(i % 20), Value::from("z".repeat(50))]),
            )
            .unwrap();
        }
        db.create_partial_index(
            "t",
            "k",
            Coverage::empty_set(),
            IndexBackend::BTree,
            Some(BufferConfig::default()),
        )
        .unwrap();
        db.attach_tuner(
            "t",
            "k",
            TunerConfig {
                window: 10,
                threshold: 3,
                capacity: 5,
            },
        )
        .unwrap();

        // Hammer value 7: after 3 queries it must be indexed.
        for _ in 0..3 {
            let (r, _) = db
                .execute(&Query::point("t", "k", 7i64))
                .unwrap()
                .into_parts();
            assert_eq!(r.count(), 10);
        }
        let (r, m) = db
            .execute(&Query::point("t", "k", 7i64))
            .unwrap()
            .into_parts();
        assert_eq!(m.path, AccessPath::PartialIndex, "tuner adapted the index");
        assert_eq!(r.count(), 10);
        assert_eq!(db.partial_index_len("t", "k"), Some(10));
        // Results stay correct after adaptation (buffer/counters adjusted).
        let (r, _) = db
            .execute(&Query::point("t", "k", 8i64))
            .unwrap()
            .into_parts();
        assert_eq!(r.count(), 10);
        db.check_space_invariants();
    }

    #[test]
    fn redefine_coverage_rebuilds_counters_and_entries() {
        let db = setup(300, 100);
        // Warm the buffer fully.
        db.execute(&Query::point("t", "k", 250i64)).unwrap();
        assert!(db.space_shard(0).buffer(0).num_entries() > 0);
        // Flip coverage to the top of the domain (experiment 4's switch).
        db.redefine_coverage("t", "k", Coverage::IntRange { lo: 200, hi: 299 })
            .unwrap();
        assert_eq!(
            db.space_shard(0).buffer(0).num_entries(),
            0,
            "buffer invalidated"
        );
        let (r, m) = db
            .execute(&Query::point("t", "k", 250i64))
            .unwrap()
            .into_parts();
        assert_eq!(m.path, AccessPath::PartialIndex);
        assert_eq!(r.count(), 1);
        let (r, m) = db
            .execute(&Query::point("t", "k", 50i64))
            .unwrap()
            .into_parts();
        assert_eq!(m.path, AccessPath::BufferedScan);
        assert_eq!(r.count(), 1);
        let _ = m;
        db.check_space_invariants();
    }

    #[test]
    fn metrics_series_shrinks_io_as_buffer_warms() {
        let db = setup(400, 100);
        let mut recorder = WorkloadRecorder::new();
        for i in 0..5 {
            recorder.record(&db.execute(&Query::point("t", "k", 300 + i)).unwrap());
        }
        let records = recorder.records();
        // Page fetches shrink to zero as the buffer completes the table
        // (this small table is pool-resident, so compare scan-level reads).
        let scan_reads = |m: &QueryMetrics| m.scan.as_ref().unwrap().pages_read;
        assert!(scan_reads(&records[0]) > 0);
        assert_eq!(scan_reads(&records[4]), 0);
        assert_eq!(
            records[4].pages_skipped(),
            db.table("t").unwrap().num_pages()
        );
        // Buffer entries series is monotone under unlimited space.
        for w in records.windows(2) {
            assert!(w[1].buffer_entries[0] >= w[0].buffer_entries[0]);
        }
    }

    #[test]
    fn hash_backend_end_to_end() {
        let db = Database::new(config());
        db.create_table("t", Schema::new(vec![Column::int("k")]))
            .unwrap();
        for i in 0..100 {
            db.insert("t", &Tuple::new(vec![Value::Int(i)])).unwrap();
        }
        db.create_partial_index(
            "t",
            "k",
            Coverage::IntRange { lo: 0, hi: 49 },
            IndexBackend::Hash,
            Some(BufferConfig {
                backend: IndexBackend::Hash,
                ..Default::default()
            }),
        )
        .unwrap();
        let (r, _) = db
            .execute(&Query::point("t", "k", 25i64))
            .unwrap()
            .into_parts();
        assert_eq!((r.path, r.count()), (AccessPath::PartialIndex, 1));
        let (r, _) = db
            .execute(&Query::point("t", "k", 75i64))
            .unwrap()
            .into_parts();
        assert_eq!((r.path, r.count()), (AccessPath::BufferedScan, 1));
        // Ranges on a hash partial index are never hits.
        let (r, _) = db
            .execute(&Query::range("t", "k", 10i64, 20i64))
            .unwrap()
            .into_parts();
        assert_eq!(r.path, AccessPath::BufferedScan);
        assert_eq!(r.count(), 11);
    }

    #[test]
    fn drop_partial_index_reverts_to_plain_scans() {
        let db = setup(200, 50);
        db.execute(&Query::point("t", "k", 150i64)).unwrap(); // warm buffer
        assert!(db.space_shard(0).buffer(0).num_entries() > 0);
        db.drop_partial_index("t", "k").unwrap();
        assert_eq!(
            db.space_shard(0).buffer(0).num_entries(),
            0,
            "buffer emptied"
        );
        let (r, m) = db
            .execute(&Query::point("t", "k", 10i64))
            .unwrap()
            .into_parts();
        assert_eq!(m.path, AccessPath::PlainScan);
        assert_eq!(r.count(), 1);
        assert!(
            db.drop_partial_index("t", "k").is_err(),
            "second drop errors"
        );
        // Re-creating works.
        db.create_partial_index(
            "t",
            "k",
            Coverage::IntRange { lo: 0, hi: 49 },
            IndexBackend::BTree,
            Some(BufferConfig::default()),
        )
        .unwrap();
        let (r, m) = db
            .execute(&Query::point("t", "k", 10i64))
            .unwrap()
            .into_parts();
        assert_eq!(m.path, AccessPath::PartialIndex);
        assert_eq!(r.count(), 1);
    }

    #[test]
    fn engine_works_with_all_pool_policies() {
        for policy in [PoolPolicy::Lru, PoolPolicy::Clock, PoolPolicy::LruK(2)] {
            let db = Database::new(EngineConfig {
                pool_frames: 8,
                pool_policy: policy,
                cost_model: CostModel::free(),
                ..Default::default()
            });
            db.create_table("t", Schema::new(vec![Column::int("k"), Column::str("pad")]))
                .unwrap();
            for i in 0..500 {
                db.insert(
                    "t",
                    &Tuple::new(vec![Value::Int(i), Value::from("p".repeat(100))]),
                )
                .unwrap();
            }
            db.create_partial_index(
                "t",
                "k",
                Coverage::IntRange { lo: 0, hi: 99 },
                IndexBackend::BTree,
                Some(BufferConfig::default()),
            )
            .unwrap();
            let (r, _) = db
                .execute(&Query::point("t", "k", 400i64))
                .unwrap()
                .into_parts();
            assert_eq!(r.count(), 1, "{policy:?}");
            let (r, _) = db
                .execute(&Query::point("t", "k", 42i64))
                .unwrap()
                .into_parts();
            assert_eq!(r.count(), 1, "{policy:?}");
        }
    }

    #[test]
    fn explain_predicts_the_executor() {
        let db = setup(400, 100);
        // Covered point: index hit with exact cardinality, no execution.
        let q = Query::point("t", "k", 42i64);
        let e = db.explain(&q).unwrap();
        assert_eq!(e.path, AccessPath::PartialIndex);
        assert_eq!(e.known_cardinality, Some(1));
        assert!(e.summary().contains("partial index hit"));
        let (r, _) = db.execute(&q).unwrap().into_parts();
        assert_eq!(r.path, e.path);

        // Uncovered point, cold buffer: explain forecasts the page reads.
        let q = Query::point("t", "k", 300i64);
        let e = db.explain(&q).unwrap();
        assert_eq!(e.path, AccessPath::BufferedScan);
        let (_, m) = db.execute(&q).unwrap().into_parts();
        assert_eq!(m.scan.as_ref().unwrap().pages_read, e.pages_to_read);

        // Warm buffer: everything skippable now.
        let e = db.explain(&Query::point("t", "k", 301i64)).unwrap();
        assert_eq!(e.pages_to_read, 0);
        assert_eq!(e.skip_ratio(), 1.0);
        assert!(e.buffer_entries > 0);

        // Unindexed column.
        let db2 = Database::new(config());
        db2.create_table("u", Schema::new(vec![Column::int("k")]))
            .unwrap();
        db2.insert("u", &Tuple::new(vec![Value::Int(1)])).unwrap();
        let e = db2.explain(&Query::point("u", "k", 1i64)).unwrap();
        assert_eq!(e.path, AccessPath::PlainScan);
        assert!(!e.has_partial_index);
    }

    #[test]
    fn vacuum_preserves_correctness_and_invariants() {
        let db = setup(600, 100);
        // Warm the buffer, then punch holes in the table.
        db.execute(&Query::point("t", "k", 400i64)).unwrap();
        let (all, _) = {
            let (r, m) = db
                .execute(&Query::range("t", "k", 100i64, 599i64))
                .unwrap()
                .into_parts();
            (r.rids.clone(), m)
        };
        for rid in all.iter().step_by(3) {
            // Thin out uncovered tuples across many pages.
            if db.fetch("t", *rid).is_ok() {
                db.delete("t", *rid).unwrap();
            }
        }
        let live_before = db.table("t").unwrap().live_tuples();
        let (drained, moved) = db.vacuum("t", 0.8).unwrap();
        assert!(drained > 0, "sparse pages exist after the deletions");
        assert!(moved > 0);
        assert_eq!(db.table("t").unwrap().live_tuples(), live_before);
        // Queries still agree with ground truth on both paths.
        let (r, m) = db
            .execute(&Query::point("t", "k", 401i64))
            .unwrap()
            .into_parts();
        let expected = db
            .table("t")
            .unwrap()
            .scan_all()
            .unwrap()
            .iter()
            .filter(|(_, t)| t.get(0).unwrap().as_int() == Some(401))
            .count();
        assert_eq!(r.count(), expected);
        let _ = m;
        let (r, _) = db
            .execute(&Query::point("t", "k", 50i64))
            .unwrap()
            .into_parts();
        let expected = db
            .table("t")
            .unwrap()
            .scan_all()
            .unwrap()
            .iter()
            .filter(|(_, t)| t.get(0).unwrap().as_int() == Some(50))
            .count();
        assert_eq!(r.count(), expected);
        db.check_space_invariants();
    }

    #[test]
    fn paged_partial_index_end_to_end() {
        // A disk-resident partial index: same semantics, real probe I/O.
        let db = Database::new(EngineConfig {
            pool_frames: 16,
            cost_model: CostModel::default(),
            space: SpaceConfig {
                max_bytes: None,
                i_max: 10_000,
                seed: 7,
                ..Default::default()
            },
            ..Default::default()
        });
        db.create_table("t", Schema::new(vec![Column::int("k"), Column::str("pad")]))
            .unwrap();
        for i in 0..3_000 {
            db.insert(
                "t",
                &Tuple::new(vec![Value::Int(i % 300), Value::from("q".repeat(60))]),
            )
            .unwrap();
        }
        db.create_paged_partial_index(
            "t",
            "k",
            Coverage::IntRange { lo: 0, hi: 99 },
            Some(BufferConfig::default()),
        )
        .unwrap();

        // Covered point query: hit via the paged tree, probe I/O is real.
        let (r, m) = db
            .execute(&Query::point("t", "k", 50i64))
            .unwrap()
            .into_parts();
        assert_eq!(r.path, AccessPath::PartialIndex);
        assert_eq!(r.count(), 10);
        assert!(m.io.page_reads > 0, "paged probe reads pages: {:?}", m.io);

        // Covered range query works through lookup_range.
        let (r, _) = db
            .execute(&Query::range("t", "k", 10i64, 12i64))
            .unwrap()
            .into_parts();
        assert_eq!(r.path, AccessPath::PartialIndex);
        assert_eq!(r.count(), 30);

        // Uncovered query: buffered scan, then skips.
        let (r, _) = db
            .execute(&Query::point("t", "k", 200i64))
            .unwrap()
            .into_parts();
        assert_eq!(r.path, AccessPath::BufferedScan);
        assert_eq!(r.count(), 10);
        let (r, m) = db
            .execute(&Query::point("t", "k", 250i64))
            .unwrap()
            .into_parts();
        assert_eq!(m.scan.unwrap().pages_read, 0);
        assert_eq!(r.count(), 10);

        // DML maintains the paged tree.
        let rid = db
            .insert("t", &Tuple::new(vec![Value::Int(50), Value::from("new")]))
            .unwrap();
        let (r, _) = db
            .execute(&Query::point("t", "k", 50i64))
            .unwrap()
            .into_parts();
        assert_eq!(r.count(), 11);
        assert!(r.rids.contains(&rid));
        db.delete("t", rid).unwrap();
        let (r, _) = db
            .execute(&Query::point("t", "k", 50i64))
            .unwrap()
            .into_parts();
        assert_eq!(r.count(), 10);
        db.check_space_invariants();
    }

    #[test]
    fn shared_budget_crosses_components_both_ways() {
        use aib_storage::{DEFAULT_ENTRY_FOOTPRINT, PAGE_SIZE};

        // One heap page plus the index bytes fit a two-page total exactly
        // minus the buffer's footprint — so the *second* heap frame is
        // denied only because the Index Buffer grew.
        const TOTAL: usize = 2 * PAGE_SIZE;
        let mut cfg = config();
        cfg.pool_frames = 4;
        cfg.total_memory_bytes = Some(TOTAL);
        let db = Database::new(cfg);
        db.create_table("t", Schema::new(vec![Column::int("k"), Column::str("pad")]))
            .unwrap();
        let row = |k: i64| Tuple::new(vec![Value::Int(k), Value::from("p".repeat(200))]);
        for i in 0..30 {
            db.insert("t", &row(i)).unwrap();
        }
        assert_eq!(db.table("t").unwrap().num_pages(), 1, "one page so far");
        db.create_partial_index(
            "t",
            "k",
            Coverage::empty_set(),
            IndexBackend::BTree,
            Some(BufferConfig::default()),
        )
        .unwrap();

        // The indexing scan buffers all 30 uncovered tuples.
        let (r, m) = db
            .execute(&Query::point("t", "k", 7i64))
            .unwrap()
            .into_parts();
        assert_eq!(r.count(), 1);
        assert_eq!(m.memory.index_bytes, 30 * DEFAULT_ENTRY_FOOTPRINT);
        let before = db.memory();
        assert_eq!(before.denials, 0, "one frame plus the buffer fit the total");
        assert_eq!(before.buffer_pool_bytes, PAGE_SIZE);

        // Index growth denies the pool: a second heap page would fit the
        // total on its own (2 × PAGE_SIZE), but not next to the resident
        // index bytes — the pool must displace instead of claiming a frame.
        for i in 0..200 {
            db.insert("t", &row(100 + i)).unwrap();
        }
        let after = db.memory();
        assert!(
            after.denials > before.denials,
            "index bytes denied the pool"
        );
        assert!(after.displacements > before.displacements);
        assert!(after.total_bytes() <= TOTAL, "governor holds the line");
        assert!(after.high_water >= after.total_bytes());

        // Pool residency denies the space (the other direction): Algorithm 2
        // sees exactly the total minus both components' residency, not the
        // paper's standalone entry bound.
        assert_eq!(
            db.space_shard(0).free_bytes(),
            TOTAL - after.buffer_pool_bytes - after.index_bytes,
            "pool bytes shrink what Algorithm 2 may claim"
        );

        // Queries stay correct under the shrunken working set.
        let (r, m) = db
            .execute(&Query::point("t", "k", 150i64))
            .unwrap()
            .into_parts();
        assert_eq!(r.count(), 1);
        // A scan batch may pin the whole resident set, forcing at most one
        // page of charged overshoot; the bound is otherwise intact.
        assert!(m.memory.total_bytes() <= TOTAL + PAGE_SIZE);
        db.check_space_invariants();
    }

    #[test]
    fn all_apply_modes_agree_with_the_locked_executor() {
        // The same uncovered workload under every adaptation_apply_mode
        // must produce identical results; after the quiescence point
        // (drain_adaptations) the buffers must converge too.
        let run = |mode: AdaptationApplyMode| {
            let db = Database::new(EngineConfig {
                adaptation_apply_mode: mode,
                ..config()
            });
            db.create_table("t", Schema::new(vec![Column::int("k"), Column::str("pad")]))
                .unwrap();
            for i in 0..400 {
                db.insert(
                    "t",
                    &Tuple::new(vec![Value::Int(i), Value::from("p".repeat(100))]),
                )
                .unwrap();
            }
            db.create_partial_index(
                "t",
                "k",
                Coverage::IntRange { lo: 0, hi: 99 },
                IndexBackend::BTree,
                Some(BufferConfig::default()),
            )
            .unwrap();
            let mut counts = Vec::new();
            for i in 0..6 {
                let (r, _) = db
                    .execute(&Query::point("t", "k", 200 + i))
                    .unwrap()
                    .into_parts();
                counts.push(r.count());
            }
            db.drain_adaptations();
            let entries = db.space_shard(0).buffer(0).num_entries();
            db.check_space_invariants();
            (counts, entries, db.adaptation_stats())
        };

        let (locked_counts, locked_entries, locked_stats) = run(AdaptationApplyMode::Locked);
        let (inline_counts, inline_entries, inline_stats) = run(AdaptationApplyMode::Inline);
        let (queued_counts, queued_entries, queued_stats) = run(AdaptationApplyMode::Queued);
        assert_eq!(locked_counts, inline_counts);
        assert_eq!(locked_counts, queued_counts);
        assert_eq!(locked_entries, inline_entries, "inline is read-your-writes");
        assert_eq!(
            locked_entries, queued_entries,
            "queued converges under quiescence"
        );
        assert_eq!(locked_stats, aib_core::AdaptationStats::default());
        assert_eq!(inline_stats, aib_core::AdaptationStats::default());
        assert!(queued_stats.enqueued > 0, "queued mode parked batches");
        assert_eq!(
            queued_stats.applied + queued_stats.dropped,
            queued_stats.enqueued,
            "every batch was resolved"
        );
        assert_eq!(queued_stats.depth, 0, "drained");
    }

    #[test]
    fn queued_mode_stays_correct_under_ddl_races() {
        // Redefining coverage while batches are parked must drop the stale
        // batches (epoch moved), not resurrect pre-DDL entries.
        let db = Database::new(EngineConfig {
            adaptation_apply_mode: AdaptationApplyMode::Queued,
            ..config()
        });
        db.create_table("t", Schema::new(vec![Column::int("k"), Column::str("pad")]))
            .unwrap();
        for i in 0..300 {
            db.insert(
                "t",
                &Tuple::new(vec![Value::Int(i), Value::from("p".repeat(100))]),
            )
            .unwrap();
        }
        db.create_partial_index(
            "t",
            "k",
            Coverage::IntRange { lo: 0, hi: 99 },
            IndexBackend::BTree,
            Some(BufferConfig::default()),
        )
        .unwrap();
        // Stage batches, then immediately flip coverage before draining.
        db.execute(&Query::point("t", "k", 200i64)).unwrap();
        db.redefine_coverage("t", "k", Coverage::IntRange { lo: 200, hi: 299 })
            .unwrap();
        db.drain_adaptations();
        db.check_space_invariants();
        // Post-DDL queries answer correctly on both paths.
        let (r, m) = db
            .execute(&Query::point("t", "k", 250i64))
            .unwrap()
            .into_parts();
        assert_eq!(m.path, AccessPath::PartialIndex);
        assert_eq!(r.count(), 1);
        let (r, _) = db
            .execute(&Query::point("t", "k", 50i64))
            .unwrap()
            .into_parts();
        assert_eq!(r.count(), 1);
        db.check_space_invariants();
    }

    #[test]
    fn predicate_on_unknown_table_or_column_errors() {
        let db = Database::new(config());
        db.create_table("t", Schema::new(vec![Column::int("k")]))
            .unwrap();
        assert!(db.execute(&Query::point("nope", "k", 1i64)).is_err());
        assert!(db.execute(&Query::point("t", "nope", 1i64)).is_err());
    }
}
