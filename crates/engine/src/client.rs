//! Per-client handles over a shared [`Database`].
//!
//! The engine is multi-client: [`Database`] takes `&self` everywhere, so
//! any number of threads can execute queries and DML against one instance
//! behind an [`Arc`]. [`ClientHandle`] is the wrapper for that pattern —
//! one clone per client thread, each forwarding to the shared engine:
//!
//! ```
//! use aib_engine::{ClientHandle, Database, Query};
//! use aib_storage::{Column, Schema, Tuple, Value};
//!
//! let db = Database::with_defaults().into_shared();
//! db.create_table("t", Schema::new(vec![Column::int("k")])).unwrap();
//! for i in 0..64i64 {
//!     db.insert("t", &Tuple::new(vec![Value::Int(i)])).unwrap();
//! }
//!
//! let handles: Vec<_> = (0..4).map(|_| ClientHandle::new(db.clone())).collect();
//! std::thread::scope(|s| {
//!     for client in &handles {
//!         s.spawn(move || {
//!             let out = client.execute(&Query::on("t", "k").eq(7i64)).unwrap();
//!             assert_eq!(out.result.count(), 1);
//!         });
//!     }
//! });
//! ```

use std::sync::Arc;

use aib_core::sync::Mutex;
use aib_core::SnapshotCache;
use aib_storage::{Rid, Tuple};

use crate::db::{BatchOp, Database};
use crate::error::EngineResult;
use crate::explain::Explanation;
use crate::query::{ExecOutcome, Query};

/// A clonable client connection to a shared [`Database`].
///
/// Beyond forwarding, each handle owns a private [`SnapshotCache`]: the
/// validated space snapshot plus locally deferred Table II events that make
/// runs of fully-skippable queries lock-free (see
/// [`Database::execute_with_cache`]). The cache is client-private state —
/// cloning a handle gives the new client a fresh, empty cache — and it
/// flushes its deferred events into the shared space when the handle drops.
#[derive(Debug)]
pub struct ClientHandle {
    db: Arc<Database>,
    cache: Mutex<SnapshotCache>,
}

impl Clone for ClientHandle {
    fn clone(&self) -> Self {
        ClientHandle {
            db: Arc::clone(&self.db),
            cache: Mutex::new(SnapshotCache::new()),
        }
    }
}

impl Drop for ClientHandle {
    fn drop(&mut self) {
        // Publish any still-deferred Table II events; the next write-side
        // entry into each shard drains them.
        self.cache.get_mut().flush();
    }
}

impl ClientHandle {
    /// A new client over the shared database.
    pub fn new(db: Arc<Database>) -> Self {
        ClientHandle {
            db,
            cache: Mutex::new(SnapshotCache::new()),
        }
    }

    /// The underlying database, for calls this wrapper does not forward
    /// (DDL, inspection).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Executes a query through this client's snapshot cache. See
    /// [`Database::execute_with_cache`].
    pub fn execute(&self, query: &Query) -> EngineResult<ExecOutcome> {
        self.db.execute_with_cache(query, &mut self.cache.lock())
    }

    /// Explains a query without executing it. See [`Database::explain`].
    pub fn explain(&self, query: &Query) -> EngineResult<Explanation> {
        self.db.explain(query)
    }

    /// Inserts a tuple. See [`Database::insert`].
    pub fn insert(&self, table: &str, tuple: &Tuple) -> EngineResult<Rid> {
        self.cache.lock().flush();
        self.db.insert(table, tuple)
    }

    /// Deletes a tuple. See [`Database::delete`].
    pub fn delete(&self, table: &str, rid: Rid) -> EngineResult<()> {
        self.cache.lock().flush();
        self.db.delete(table, rid)
    }

    /// Updates a tuple. See [`Database::update`].
    pub fn update(&self, table: &str, rid: Rid, tuple: &Tuple) -> EngineResult<Rid> {
        self.cache.lock().flush();
        self.db.update(table, rid, tuple)
    }

    /// Applies a batch of DML operations under one lock acquisition and
    /// one commit-pipeline ticket — a single client's way to amortize the
    /// covering fsync. See [`Database::execute_batch`].
    pub fn execute_batch(&self, ops: &[BatchOp]) -> EngineResult<Vec<Option<Rid>>> {
        self.cache.lock().flush();
        self.db.execute_batch(ops)
    }

    /// Fetches a tuple by rid. See [`Database::fetch`].
    pub fn fetch(&self, table: &str, rid: Rid) -> EngineResult<Tuple> {
        self.db.fetch(table, rid)
    }

    /// Adaptation-queue counters (queued apply mode). See
    /// [`Database::adaptation_stats`].
    pub fn adaptation_stats(&self) -> aib_core::AdaptationStats {
        self.db.adaptation_stats()
    }

    /// Flushes this client's deferred Table II events, then applies every
    /// parked adaptation batch — the client-side quiescence point. See
    /// [`Database::drain_adaptations`].
    pub fn drain_adaptations(&self) {
        self.cache.lock().flush();
        self.db.drain_adaptations();
    }
}
