//! Per-client handles over a shared [`Database`].
//!
//! The engine is multi-client: [`Database`] takes `&self` everywhere, so
//! any number of threads can execute queries and DML against one instance
//! behind an [`Arc`]. [`ClientHandle`] is the ergonomic wrapper for that
//! pattern — one cheap clone per client thread, each forwarding to the
//! shared engine:
//!
//! ```
//! use aib_engine::{ClientHandle, Database, Query};
//! use aib_storage::{Column, Schema, Tuple, Value};
//!
//! let db = Database::with_defaults().into_shared();
//! db.create_table("t", Schema::new(vec![Column::int("k")])).unwrap();
//! for i in 0..64i64 {
//!     db.insert("t", &Tuple::new(vec![Value::Int(i)])).unwrap();
//! }
//!
//! let handles: Vec<_> = (0..4).map(|_| ClientHandle::new(db.clone())).collect();
//! std::thread::scope(|s| {
//!     for client in &handles {
//!         s.spawn(move || {
//!             let out = client.execute(&Query::on("t", "k").eq(7i64)).unwrap();
//!             assert_eq!(out.result.count(), 1);
//!         });
//!     }
//! });
//! ```

use std::sync::Arc;

use aib_storage::{Rid, Tuple};

use crate::db::Database;
use crate::error::EngineResult;
use crate::explain::Explanation;
use crate::query::{ExecOutcome, Query};

/// A cheaply clonable client connection to a shared [`Database`].
///
/// Purely a convenience: it adds no state and no locking of its own (all
/// synchronization lives in the engine's catalog/space locks), so a
/// `ClientHandle` and a bare `Arc<Database>` are interchangeable.
#[derive(Clone, Debug)]
pub struct ClientHandle {
    db: Arc<Database>,
}

impl ClientHandle {
    /// A new client over the shared database.
    pub fn new(db: Arc<Database>) -> Self {
        ClientHandle { db }
    }

    /// The underlying database, for calls this wrapper does not forward
    /// (DDL, inspection).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Executes a query. See [`Database::execute`].
    pub fn execute(&self, query: &Query) -> EngineResult<ExecOutcome> {
        self.db.execute(query)
    }

    /// Explains a query without executing it. See [`Database::explain`].
    pub fn explain(&self, query: &Query) -> EngineResult<Explanation> {
        self.db.explain(query)
    }

    /// Inserts a tuple. See [`Database::insert`].
    pub fn insert(&self, table: &str, tuple: &Tuple) -> EngineResult<Rid> {
        self.db.insert(table, tuple)
    }

    /// Deletes a tuple. See [`Database::delete`].
    pub fn delete(&self, table: &str, rid: Rid) -> EngineResult<()> {
        self.db.delete(table, rid)
    }

    /// Updates a tuple. See [`Database::update`].
    pub fn update(&self, table: &str, rid: Rid, tuple: &Tuple) -> EngineResult<Rid> {
        self.db.update(table, rid, tuple)
    }

    /// Fetches a tuple by rid. See [`Database::fetch`].
    pub fn fetch(&self, table: &str, rid: Rid) -> EngineResult<Tuple> {
        self.db.fetch(table, rid)
    }
}
