//! Query plan explanation: what access path a query would take and what it
//! is expected to cost — *without executing it*.
//!
//! The paper's related work (§VI) contrasts online tuning against
//! *what-if* optimizer interfaces, which are "expensive since they involve
//! a complete logical query processing". The Index Buffer's bookkeeping
//! makes the interesting questions answerable for free: the counters `C[p]`
//! say exactly how many pages a scan must read, and the partial index knows
//! its own cardinalities.

use aib_core::Predicate;

use crate::query::AccessPath;

/// A pre-execution cost sketch of one query.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// The access path the executor would take.
    pub path: AccessPath,
    /// Whether the queried column has a partial index.
    pub has_partial_index: bool,
    /// Whether the queried column has an Index Buffer.
    pub has_buffer: bool,
    /// Total pages of the table.
    pub table_pages: u32,
    /// Pages a scan would actually fetch (`C[p] > 0` pages); equals
    /// `table_pages` for plain scans and 0 for index hits.
    pub pages_to_read: u32,
    /// Pages skippable thanks to full indexing (partial index + buffer).
    pub pages_skippable: u32,
    /// Contiguous skippable runs the sweep would jump whole — read straight
    /// off the maintained skip bitset, so it costs a word scan, not a page
    /// scan. 0 for index hits and plain scans.
    pub skip_runs: u32,
    /// Exact result cardinality for point lookups answerable from the
    /// partial index; `None` when only execution can tell.
    pub known_cardinality: Option<usize>,
    /// Buffer entries currently held for this column.
    pub buffer_entries: usize,
    /// Resident bytes those entries charge to the memory governor
    /// ([`aib_storage::MemoryUsage`] footprint of the column's buffer).
    pub buffer_bytes: usize,
    /// Worker threads the executor would run the indexing scan with (1 for
    /// index hits and plain scans).
    pub scan_threads: usize,
    /// Adaptation batches currently parked on the shard queues (summed);
    /// buffer entries those batches would add are not yet visible to
    /// queries. Always 0 outside
    /// [`crate::AdaptationApplyMode::Queued`].
    pub adaptation_queue_depth: usize,
}

impl Explanation {
    /// Fraction of the table a scan could skip right now.
    pub fn skip_ratio(&self) -> f64 {
        if self.table_pages == 0 {
            return 0.0;
        }
        f64::from(self.pages_skippable) / f64::from(self.table_pages)
    }

    /// Human-readable one-line plan summary.
    pub fn summary(&self) -> String {
        match self.path {
            AccessPath::PartialIndex => format!(
                "partial index hit{}",
                self.known_cardinality
                    .map_or(String::new(), |n| format!(" ({n} rows)"))
            ),
            AccessPath::BufferedScan => {
                let mut s = format!(
                    "indexing scan: {} of {} pages to read ({:.0}% skippable), buffer holds {} entries ({} bytes)",
                    self.pages_to_read,
                    self.table_pages,
                    100.0 * self.skip_ratio(),
                    self.buffer_entries,
                    self.buffer_bytes
                );
                if self.skip_runs > 0 {
                    s.push_str(&format!(
                        ", {} skip run{}",
                        self.skip_runs,
                        if self.skip_runs == 1 { "" } else { "s" }
                    ));
                }
                if self.scan_threads > 1 {
                    s.push_str(&format!(", {} scan threads", self.scan_threads));
                }
                if self.adaptation_queue_depth > 0 {
                    s.push_str(&format!(
                        ", {} adaptation batch{} queued",
                        self.adaptation_queue_depth,
                        if self.adaptation_queue_depth == 1 {
                            ""
                        } else {
                            "es"
                        }
                    ));
                }
                s
            }
            AccessPath::PlainScan => {
                format!("full table scan: {} pages", self.table_pages)
            }
        }
    }
}

/// Used by [`crate::db::Database::explain`]; kept separate so the type can
/// be constructed in tests.
#[allow(clippy::too_many_arguments)]
pub(crate) fn explanation(
    path: AccessPath,
    has_partial_index: bool,
    has_buffer: bool,
    table_pages: u32,
    pages_to_read: u32,
    skip_runs: u32,
    known_cardinality: Option<usize>,
    buffer_entries: usize,
    buffer_bytes: usize,
    scan_threads: usize,
    adaptation_queue_depth: usize,
) -> Explanation {
    Explanation {
        path,
        has_partial_index,
        has_buffer,
        table_pages,
        pages_to_read,
        pages_skippable: table_pages - pages_to_read,
        skip_runs,
        known_cardinality,
        buffer_entries,
        buffer_bytes,
        scan_threads,
        adaptation_queue_depth,
    }
}

/// Free function used by `Database::explain` to classify the predicate the
/// same way the executor does (point coverage vs. complete range coverage).
pub(crate) fn is_predicate_point(predicate: &Predicate) -> bool {
    matches!(predicate, Predicate::Equals(_))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summaries_are_informative() {
        let hit = explanation(
            AccessPath::PartialIndex,
            true,
            true,
            100,
            0,
            0,
            Some(7),
            0,
            0,
            1,
            0,
        );
        assert_eq!(hit.summary(), "partial index hit (7 rows)");
        assert_eq!(hit.skip_ratio(), 1.0);

        let scan = explanation(
            AccessPath::BufferedScan,
            true,
            true,
            100,
            25,
            3,
            None,
            900,
            28_800,
            1,
            0,
        );
        assert_eq!(scan.pages_skippable, 75);
        assert!(scan.summary().contains("25 of 100 pages"));
        assert!(scan.summary().contains("75% skippable"));
        assert!(scan.summary().contains("900 entries (28800 bytes)"));
        assert!(scan.summary().contains("3 skip runs"));
        assert!(!scan.summary().contains("scan threads"));

        let one_run = explanation(
            AccessPath::BufferedScan,
            true,
            true,
            100,
            25,
            1,
            None,
            900,
            28_800,
            1,
            0,
        );
        assert!(one_run.summary().ends_with("1 skip run"));

        let par = explanation(
            AccessPath::BufferedScan,
            true,
            true,
            100,
            25,
            3,
            None,
            900,
            28_800,
            4,
            2,
        );
        assert!(par.summary().contains("4 scan threads"));
        assert!(par.summary().contains("2 adaptation batches queued"));

        let plain = explanation(
            AccessPath::PlainScan,
            false,
            false,
            40,
            40,
            0,
            None,
            0,
            0,
            1,
            0,
        );
        assert_eq!(plain.summary(), "full table scan: 40 pages");
        assert_eq!(plain.skip_ratio(), 0.0);
    }

    #[test]
    fn empty_table_skip_ratio_is_zero() {
        let e = explanation(
            AccessPath::PlainScan,
            false,
            false,
            0,
            0,
            0,
            None,
            0,
            0,
            1,
            0,
        );
        assert_eq!(e.skip_ratio(), 0.0);
    }
}
