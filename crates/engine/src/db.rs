//! The mini database engine: heap tables, partial secondary indexes, the
//! Adaptive Index Buffer, and the online tuner, wired together behind one
//! facade.
//!
//! This crate replaces the role the H2 Database Engine played for the
//! paper's prototype (substitution, DESIGN.md §4). The executor implements
//! the decision the paper describes in §II–III:
//!
//! * predicate value covered by the column's partial index → **index hit**
//!   (probe + tuple fetches);
//! * not covered, column has an Index Buffer → **indexing scan**
//!   (Algorithm 1, with Table II history updates and Algorithm 2 page
//!   selection);
//! * not covered, no buffer → **plain full scan** (the baseline the paper
//!   plots as "table scan").
//!
//! # Concurrency
//!
//! [`Database`] is shareable across client threads (`Arc<Database>`, or the
//! [`crate::ClientHandle`] wrapper): every entry point takes `&self`. Engine
//! state is split across the catalog lock, the sharded Index Buffer Space,
//! and the already-concurrent storage layer:
//!
//! * the **catalog** (tables, heaps, partial indexes, tuners) behind one
//!   `RwLock` — read queries hold its read lock end to end, so DML/DDL
//!   (write lock) never interleaves with an in-flight query and each query
//!   sees a frozen heap and coverage;
//! * the **Index Buffer Space** (buffers + `C[p]` counters) as a
//!   [`ShardedSpace`]: buffer `id` lives in shard `id % shards`, each shard
//!   behind its own `RwLock`, all drawing Algorithm 2 headroom from the one
//!   shared [`MemoryBudget`]. Shard write sections stay short: the
//!   Algorithm 2 selection before a sweep, the staged apply after it, and
//!   DML maintenance — and a query only locks the shard of the buffer it
//!   scans, so clients on disjoint buffers never contend.
//!
//! Queries whose every page is skippable take a **lock-free fast path**:
//! they validate an epoch-stamped [`SpaceSnapshot`] (plain atomic loads),
//! answer from its skip bitsets, and defer their Table II history events
//! into per-buffer atomic cells ([`aib_core::BufferPending`], batched
//! client-side by [`SnapshotCache`]) that the next shard-write entry drains
//! in deferral order — no shared write at all on the hot path.
//!
//! Buffered *misses* extend the same mechanism to a **snapshot-planned
//! scan** (unless [`EngineConfig::adaptation_apply_mode`] is
//! [`AdaptationApplyMode::Locked`]): the snapshot now carries everything
//! Algorithm 1's prepare needs — skip bitset, ascending-`C[p]` candidate
//! list, partition geometry, shard epoch — so page selection runs with no
//! lock at all and the buffer probe needs at most a shard *read* latch
//! (none when the buffer is empty), epoch-validated against the snapshot.
//! Plans that cannot be proven equivalent to the locked prepare
//! (displacement reachable, limited budget admitting pages, epoch moved)
//! **fail closed** to the shard-write path. Pages the sweep stages for
//! insertion are applied inline under a short shard write section
//! ([`AdaptationApplyMode::Inline`], the default — single-thread behavior
//! is identical to the locked executor) or pushed as an epoch-stamped
//! [`aib_core::AdaptationBatch`] onto a bounded per-shard MPSC queue
//! ([`AdaptationApplyMode::Queued`]) drained off-path by the `aib-apply`
//! background thread and, opportunistically, by the next shard-write
//! entry. Queued applies revalidate at apply time — `apply_staged_checked`
//! skips any page whose `C[p]` went to zero, and whole batches are dropped
//! when the shard epoch moved past the batch's stamp (the staging query
//! would have re-observed those pages anyway). Queued mode is therefore
//! *convergent under quiescence* rather than read-your-writes: once
//! queries quiesce and queues drain ([`Database::drain_adaptations`]),
//! buffer contents and counters match what a locked executor would have
//! produced. See DESIGN.md §6.
//!
//! Lock order is **catalog → shard(0) → shard(1) → … → pool**: shard locks
//! nest inside the catalog lock, multi-shard acquisitions proceed in
//! ascending shard index (DML and the exclusive tuned path take
//! `write_all`), and pool locks are storage-internal leaves (see
//! `aib-storage::buffer_pool`). The indexing scan's three-phase shape
//! (prepare under the shard write lock, sweep with no engine lock,
//! validated apply under the shard write lock) is what lets concurrent read
//! queries overlap their page I/O: the paper's Algorithm 1 mutates index
//! structure as a side effect of reads, and the staged-apply split confines
//! that mutation to the short write sections. With `shards = 1` the whole
//! arrangement degenerates to the previous single-lock executor bit for
//! bit.

// aib-lint: allow-file(no-index) — `tables` and `indexed` are only ever
// indexed by positions this module itself computed (`table_index`,
// `indexed_column`) and tables/columns are never removed, so the positions
// cannot dangle; a miss would be an engine bug, not a caller mistake.

use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use aib_core::sync::{AtomicUsize, Ordering, RwLock, RwLockReadGuard};

use aib_core::{
    apply_staged_checked, cover_tuple, indexing_scan, indexing_scan_parallel, maintain,
    planned_scan_threads, prepare_scan, sweep_plan, uncover_tuple, BufferConfig, BufferId,
    IndexBufferSpace, Predicate, ScanPrep, ScanStats, ShardWriteGuard, ShardedSpace, SnapshotCache,
    SpaceConfig, SpaceSnapshot, TupleRef,
};
use aib_index::{AdaptationCost, Coverage, IndexBackend, PagedIndex, PartialIndex};
use aib_storage::replacement::{ClockPolicy, LruKPolicy, LruPolicy};
use aib_storage::stats::IoSnapshot;
use aib_storage::{
    BudgetComponent, BudgetSnapshot, BufferPool, BufferPoolConfig, CostModel, DiskBackend,
    DiskManager, DisplacementPolicy, FileBackend, HeapFile, IoStats, MemoryBudget, PageId, Rid,
    Schema, SlotId, StorageError, Tuple, Value, Wal, WalRecord,
};

use crate::commit::{checkpointer_loop, CommitPipeline, Ticket};
use crate::durability::{DdlOp, IndexDef, SnapshotImage, TableImage};
use crate::error::{EngineError, EngineResult};
use crate::metrics::QueryMetrics;
use crate::query::{AccessPath, ExecOutcome, Query, QueryResult};
use crate::tuner::{OnlineTuner, TunerConfig};

/// Folded WAL replay work for one page: final slot states in slot order
/// (`None` = ends empty, `Some` = ends holding these bytes).
type PageOps = Vec<(SlotId, Option<Vec<u8>>)>;

/// Buffer-pool page-replacement policy selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PoolPolicy {
    /// Least recently used (default).
    #[default]
    Lru,
    /// Clock / second chance.
    Clock,
    /// LRU-K with the given K (the paper cites O'Neil et al. for the idea).
    LruK(usize),
}

impl PoolPolicy {
    fn build(self, frames: usize) -> Box<dyn DisplacementPolicy> {
        match self {
            PoolPolicy::Lru => Box::new(LruPolicy::new()),
            PoolPolicy::Clock => Box::new(ClockPolicy::new(frames)),
            PoolPolicy::LruK(k) => Box::new(LruKPolicy::new(k)),
        }
    }
}

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Buffer-pool frames (8 KiB each).
    pub pool_frames: usize,
    /// Buffer-pool replacement policy.
    pub pool_policy: PoolPolicy,
    /// Simulated I/O cost model.
    pub cost_model: CostModel,
    /// Index Buffer Space parameters (`L`, `I^MAX`, seed).
    pub space: SpaceConfig,
    /// Shared byte cap across buffer-pool frames *and* index-buffer
    /// partitions. When set, one [`MemoryBudget`] arbitrates both: index
    /// growth can deny the pool a frame (forcing an eviction) and pool
    /// residency shrinks what Algorithm 2 may select. `None` (default)
    /// leaves the components independently governed — the pool by its frame
    /// count, the space by [`SpaceConfig`]'s byte budget.
    pub total_memory_bytes: Option<usize>,
    /// Simulated page reads charged per partial-index probe (tree descent).
    pub index_probe_pages: u64,
    /// Partial-index entries per leaf page, for adaptation cost accounting.
    pub index_entries_per_page: u64,
    /// Worker threads for the indexing scan (1 = always sequential). The
    /// executor may use fewer for small tables; results are bit-for-bit
    /// identical at any setting (sequential-equivalence). Defaults to the
    /// machine's available parallelism.
    pub scan_threads: usize,
    /// When `true`, buffer-pool read misses stall the calling thread for
    /// the cost model's per-page read latency in *wall time* (see
    /// [`BufferPoolConfig::io_wait`]). Off by default; multi-client
    /// throughput experiments turn it on so concurrent queries overlap
    /// their I/O waits the way they would against a real disk.
    pub io_wait: bool,
    /// Durable databases ([`Database::open`]) checkpoint automatically
    /// after this many WAL records: dirty pages are flushed and fsynced,
    /// then the log rotates to a fresh snapshot. The rotation runs on a
    /// background thread — the commit that crosses the threshold only
    /// flags it — so the interval no longer stalls in-flight commits.
    /// Irrelevant for in-memory databases ([`Database::new`]), which have
    /// no WAL.
    pub wal_checkpoint_interval: u64,
    /// Group-commit window in microseconds: how long a commit leader
    /// lingers before writing its batch, giving concurrent writers time to
    /// stage into it. `0` (the default) never lingers, which reproduces
    /// the fsync-per-record write path bit-for-bit for a single writer —
    /// concurrent writers still batch naturally, because frames staged
    /// while a leader is inside its fsync are drained together by the next
    /// leader. See `crate::commit` for the pipeline.
    pub group_commit_wait_us: u64,
    /// Group-commit byte cap: once the staged payload bytes reach this,
    /// the leader skips the window wait, and no single batch drains more
    /// than this many bytes (plus one frame). Bounds both ack latency
    /// under a nonzero window and batch memory.
    pub group_commit_max_bytes: usize,
    /// How a snapshot-planned scan's staged buffer insertions reach the
    /// Index Buffer: see [`AdaptationApplyMode`]. Default
    /// [`AdaptationApplyMode::Inline`].
    pub adaptation_apply_mode: AdaptationApplyMode,
    /// Per-shard cap on parked [`aib_core::AdaptationBatch`]es in
    /// [`AdaptationApplyMode::Queued`] mode; a push against a full queue
    /// fails closed to an inline locked apply.
    pub adaptation_queue_depth: usize,
}

/// How the insertions a snapshot-planned scan stages reach the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdaptationApplyMode {
    /// Disable snapshot planning entirely: every partially-skippable
    /// buffered miss takes the shard-write prepare/apply path (the PR 6
    /// executor, and the baseline the concurrency benches compare
    /// against). The 100%-skippable fast path stays on.
    Locked,
    /// Plan and probe read-only (no shard lock); apply any staged
    /// insertions synchronously under the shard write lock before the
    /// query returns. Per-query behavior matches the locked path
    /// bit-for-bit when uncontended; queries that stage nothing — the
    /// steady state — touch no lock at all.
    #[default]
    Inline,
    /// Plan and probe read-only; push staged insertions onto the per-shard
    /// adaptation queue for the background applier (or the next write-side
    /// shard entry) to apply. Queries never take the shard write lock;
    /// buffer state is *convergent under quiescence* rather than
    /// per-query sequential-equivalent (DESIGN §6).
    Queued,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            pool_frames: 1024,
            pool_policy: PoolPolicy::default(),
            cost_model: CostModel::default(),
            space: SpaceConfig::default(),
            total_memory_bytes: None,
            index_probe_pages: 3,
            index_entries_per_page: 400,
            scan_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            io_wait: false,
            wal_checkpoint_interval: 4096,
            group_commit_wait_us: 0,
            group_commit_max_bytes: 1 << 20,
            adaptation_apply_mode: AdaptationApplyMode::default(),
            adaptation_queue_depth: aib_core::DEFAULT_ADAPTATION_QUEUE_DEPTH,
        }
    }
}

/// One partially indexed column of a table.
struct IndexedColumn {
    column: usize,
    partial: PartialIndex,
    buffer: Option<BufferId>,
    tuner: Option<OnlineTuner>,
    /// Disk-resident backend: probe/maintenance I/O is real page traffic,
    /// so no synthetic probe cost is charged.
    paged: bool,
    /// The DDL-time definition as the WAL sees it: coverage set by
    /// create/redefine (never by tuner adaptation), backend, buffer config.
    /// Checkpoints snapshot this, so recovery reverts adaptation.
    logged: IndexDef,
}

/// A table: schema, heap storage, and its indexed columns.
pub struct Table {
    name: String,
    schema: Schema,
    heap: HeapFile,
    indexed: Vec<IndexedColumn>,
}

impl Table {
    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of pages in the heap.
    pub fn num_pages(&self) -> u32 {
        self.heap.num_pages()
    }

    /// Number of live tuples.
    pub fn live_tuples(&self) -> u64 {
        self.heap.live_tuples()
    }

    /// All live tuples with their rids, in page order (test/inspection aid;
    /// costs a full scan). Reads run through the batched sweep path
    /// ([`HeapFile::sweep_read_runs`]) — one pool pass and one batched disk
    /// request per page batch, not a pin round-trip per page.
    pub fn scan_all(&self) -> EngineResult<Vec<(Rid, Tuple)>> {
        let mut out = Vec::new();
        let mut err: Option<StorageError> = None;
        self.heap
            .sweep_read_runs([(0..self.heap.num_pages(), false)], |_ord, pid, view| {
                if err.is_some() {
                    return;
                }
                for (slot, bytes) in view.iter() {
                    match Tuple::from_bytes(bytes) {
                        Ok(t) => out.push((Rid { page: pid, slot }, t)),
                        Err(e) => {
                            err = Some(e);
                            return;
                        }
                    }
                }
            })?;
        match err {
            Some(e) => Err(e.into()),
            None => Ok(out),
        }
    }

    /// Live tuples of one page by table-local ordinal (test/inspection aid).
    /// Single-page run through the same batched sweep path as
    /// [`Table::scan_all`].
    pub fn page_tuples(&self, ordinal: u32) -> EngineResult<Vec<(Rid, Tuple)>> {
        let mut out = Vec::new();
        let mut err: Option<StorageError> = None;
        self.heap.sweep_read_runs(
            [(ordinal..ordinal.saturating_add(1), false)],
            |_, pid, view| {
                if err.is_some() {
                    return;
                }
                for (slot, bytes) in view.iter() {
                    match Tuple::from_bytes(bytes) {
                        Ok(t) => out.push((Rid { page: pid, slot }, t)),
                        Err(e) => {
                            err = Some(e);
                            return;
                        }
                    }
                }
            },
        )?;
        match err {
            Some(e) => Err(e.into()),
            None => Ok(out),
        }
    }

    /// Table-local ordinal of a rid's page (test/inspection aid).
    pub fn page_ordinal(&self, rid: Rid) -> Option<u32> {
        self.heap.ordinal_of(rid.page)
    }

    fn indexed_column(&self, column: usize) -> Option<usize> {
        self.indexed.iter().position(|ic| ic.column == column)
    }

    fn ordinal(&self, rid: Rid) -> Result<u32, StorageError> {
        self.heap
            .ordinal_of(rid.page)
            .ok_or(StorageError::UnknownPage(rid.page))
    }
}

/// The table/index layer of the engine: everything DML and DDL mutate that
/// is not the Index Buffer Space. Guarded by the catalog `RwLock` — the
/// outermost lock of the engine hierarchy.
struct Catalog {
    tables: Vec<Table>,
    names: HashMap<String, usize>,
}

impl Catalog {
    fn table_index(&self, name: &str) -> EngineResult<usize> {
        self.names
            .get(name)
            .copied()
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }

    fn column_index(&self, table: usize, column: &str) -> EngineResult<usize> {
        self.tables[table]
            .schema
            .column_index(column)
            .ok_or_else(|| EngineError::UnknownColumn(column.to_string()))
    }
}

/// Read access to one table of a shared database: an RAII guard over the
/// catalog read lock that dereferences to the [`Table`]. Holding it blocks
/// DML/DDL (catalog writers), so keep it scoped — exactly like holding any
/// read lock.
pub struct TableRef<'a> {
    guard: RwLockReadGuard<'a, Catalog>,
    index: usize,
}

impl std::ops::Deref for TableRef<'_> {
    type Target = Table;
    fn deref(&self) -> &Table {
        &self.guard.tables[self.index]
    }
}

/// Read access to one shard of the Index Buffer Space: an RAII guard over
/// that shard's read lock, dereferencing to the shard's
/// [`IndexBufferSpace`]. Obtain it from [`Database::space_shard`] with the
/// buffer you want to inspect; holding it blocks that shard's writers
/// (scans' staged apply, DML maintenance) — other shards stay free. Keep it
/// scoped.
pub struct ShardRef<'a> {
    guard: RwLockReadGuard<'a, IndexBufferSpace>,
}

impl std::ops::Deref for ShardRef<'_> {
    type Target = IndexBufferSpace;
    fn deref(&self) -> &IndexBufferSpace {
        &self.guard
    }
}

/// The database facade. Shareable across client threads: every method takes
/// `&self`, so queries and DML can run from an `Arc<Database>` (see
/// [`crate::ClientHandle`]).
///
/// ```
/// use aib_core::BufferConfig;
/// use aib_engine::{AccessPath, Database, Query};
/// use aib_index::{Coverage, IndexBackend};
/// use aib_storage::{Column, Schema, Tuple, Value};
///
/// let db = Database::with_defaults();
/// db.create_table("t", Schema::new(vec![Column::int("k"), Column::str("v")])).unwrap();
/// for i in 0..100i64 {
///     db.insert("t", &Tuple::new(vec![Value::Int(i), Value::from("x")])).unwrap();
/// }
/// db.create_partial_index("t", "k", Coverage::IntRange { lo: 0, hi: 49 },
///                         IndexBackend::BTree, Some(BufferConfig::default())).unwrap();
///
/// // Covered value: partial index hit.
/// let r = db.execute(&Query::on("t", "k").eq(7i64)).unwrap().result;
/// assert_eq!((r.path, r.count()), (AccessPath::PartialIndex, 1));
///
/// // Uncovered value: indexing scan builds the buffer; the repeat skips.
/// let m1 = db.execute(&Query::on("t", "k").eq(70i64)).unwrap().metrics;
/// let m2 = db.execute(&Query::on("t", "k").eq(71i64)).unwrap().metrics;
/// assert!(m1.scan.unwrap().pages_indexed > 0);
/// assert_eq!(m2.scan.unwrap().pages_read, 0);
/// ```
pub struct Database {
    pool: Arc<BufferPool>,
    stats: Arc<IoStats>,
    budget: Arc<MemoryBudget>,
    /// Shared with the background checkpointer thread, which takes the
    /// write lock for the checkpoint cut exactly like a DML caller.
    catalog: Arc<RwLock<Catalog>>,
    /// Shared with the background adaptation applier thread, which drains
    /// the per-shard queues through ordinary write-side shard entries.
    space: Arc<ShardedSpace>,
    config: EngineConfig,
    queries_executed: AtomicUsize,
    /// `Some` for file-backed databases ([`Database::open`]): the
    /// group-commit pipeline owning the WAL (see `crate::commit`). Its
    /// locks are leaves — commits stage under the catalog write lock but
    /// wait for their fsync only *after* releasing every engine lock.
    durability: Option<Arc<CommitPipeline>>,
    /// Background checkpoint thread ([`Database::open`] spawns it, drop
    /// joins it); rotation runs here so the periodic checkpoint never
    /// stalls the commit that crossed the interval.
    checkpointer: Option<std::thread::JoinHandle<()>>,
    /// Background adaptation applier ("aib-apply", spawned only in
    /// [`AdaptationApplyMode::Queued`]; drop signals and joins it). Woken
    /// by queue pushes, it drains parked batches through write-side shard
    /// entries so adaptation never rides a reader's latency path.
    applier: Option<std::thread::JoinHandle<()>>,
}

/// `Database` must stay shareable across client threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Database>()
};

/// One operation of a [`Database::execute_batch`] call. Owned (rather than
/// borrowed) fields keep batches buildable incrementally and sendable
/// across client threads.
#[derive(Debug, Clone)]
pub enum BatchOp {
    /// Insert `tuple` into `table` (see [`Database::insert`]).
    Insert {
        /// Target table name.
        table: String,
        /// The tuple to insert.
        tuple: Tuple,
    },
    /// Delete the tuple at `rid` (see [`Database::delete`]).
    Delete {
        /// Target table name.
        table: String,
        /// The tuple to delete.
        rid: Rid,
    },
    /// Update the tuple at `rid` (see [`Database::update`]).
    Update {
        /// Target table name.
        table: String,
        /// The tuple to replace.
        rid: Rid,
        /// Its new contents.
        tuple: Tuple,
    },
}

impl Database {
    /// Creates an empty **in-memory** database: pages live in the
    /// simulated [`DiskManager`], nothing survives the process, and no WAL
    /// is written. This is the benchmark default — deterministic and
    /// bit-for-bit identical to the pre-durability engine.
    pub fn new(config: EngineConfig) -> Self {
        let disk = DiskManager::new(config.cost_model);
        let stats = disk.stats();
        Self::assemble(Box::new(disk), stats, config)
    }

    /// Opens (or creates) a **durable** database in directory `dir`:
    /// a single heap file (`heap.db`, one versioned header page plus 8 KiB
    /// data pages) and a write-ahead log (`wal.log`).
    ///
    /// Recovery is the paper's §V contract made concrete. The WAL is
    /// replayed to rebuild the catalog and the logical heap (last-write-wins
    /// slot states over whatever the last checkpoint flushed), and then each
    /// partial index is rebuilt by **one heap rescan** that simultaneously
    /// re-derives its `C[p]` counters — the same scan that
    /// [`Database::create_partial_index`] runs. The Index Buffer Space
    /// starts *empty* with fresh epochs: buffer contents, counter deltas and
    /// partial-index adaptation are never logged, so a crash simply reverts
    /// every index to its DDL-time coverage. Tuners are runtime-only and do
    /// not survive reopening.
    ///
    /// On success the database has already checkpointed once, compacting
    /// the log to a single snapshot record.
    pub fn open(dir: impl AsRef<Path>, config: EngineConfig) -> EngineResult<Self> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)
            .map_err(|e| StorageError::io("create database directory", e))?;
        let backend = FileBackend::open(&dir.join("heap.db"), config.cost_model)?;
        let stats = DiskBackend::stats(&backend);
        let mut db = Self::assemble(Box::new(backend), stats, config);
        let wal_path = dir.join("wal.log");
        let records = Wal::replay(&wal_path)?;
        db.recover(&records)?;
        let pipeline = Arc::new(CommitPipeline::new(
            Wal::open(&wal_path)?,
            records.len() as u64,
            db.config.group_commit_wait_us,
            db.config.group_commit_max_bytes,
            db.config.wal_checkpoint_interval,
        ));
        db.durability = Some(Arc::clone(&pipeline));
        db.checkpoint()?;
        // The background checkpointer owns WAL rotation from here on: the
        // commit that crosses `wal_checkpoint_interval` only flags the
        // checkpoint as due and unparks this thread, so the rotation's
        // pool flush never sits on any commit's latency path.
        let thread_pool = Arc::clone(&db.pool);
        let thread_catalog = Arc::clone(&db.catalog);
        let thread_pipeline = Arc::clone(&pipeline);
        let handle = std::thread::Builder::new()
            .name("aib-checkpoint".into())
            .spawn(move || {
                checkpointer_loop(&thread_pipeline, || {
                    checkpoint_core(&thread_pool, &thread_catalog, &thread_pipeline)
                        .map_err(|e| e.to_string())
                })
            })
            .map_err(|e| StorageError::io("spawn checkpoint thread", e))?;
        pipeline.register_checkpointer(handle.thread().clone());
        db.checkpointer = Some(handle);
        Ok(db)
    }

    /// Shared constructor over any [`DiskBackend`].
    fn assemble(disk: Box<dyn DiskBackend>, stats: Arc<IoStats>, config: EngineConfig) -> Self {
        // One governor for the whole engine: the pool reserves frame bytes
        // against it and the space draws Algorithm 2's headroom from it, so
        // either side's growth is the other side's denial.
        let mut budget = match config.total_memory_bytes {
            Some(total) => MemoryBudget::with_total(total),
            None => MemoryBudget::unlimited(),
        };
        if let Some(bytes) = config.space.budget_bytes() {
            budget = budget.with_component_limit(BudgetComponent::IndexSpace, bytes);
        }
        let budget = Arc::new(budget);
        let pool = BufferPool::with_backend(
            disk,
            BufferPoolConfig::with_policy(
                config.pool_frames,
                config.pool_policy.build(config.pool_frames),
            )
            .with_budget(Arc::clone(&budget))
            .with_io_wait(config.io_wait),
        );
        let space = Arc::new(ShardedSpace::with_budget(config.space, Arc::clone(&budget)));
        space.set_adaptation_queue_limit(config.adaptation_queue_depth);
        // The applier exists only in queued mode: inline/locked modes never
        // park a batch, so there is nothing to drain off-path. A failed
        // spawn degrades gracefully — parked batches are still drained by
        // the next write-side shard entry.
        let applier = if config.adaptation_apply_mode == AdaptationApplyMode::Queued {
            let thread_space = Arc::clone(&space);
            std::thread::Builder::new()
                .name("aib-apply".into())
                .spawn(move || applier_loop(&thread_space))
                .ok()
                .inspect(|handle| space.register_applier(handle.thread().clone()))
        } else {
            None
        };
        Database {
            pool,
            stats,
            space,
            budget,
            catalog: Arc::new(RwLock::new(Catalog {
                tables: Vec::new(),
                names: HashMap::new(),
            })),
            config,
            queries_executed: AtomicUsize::new(0),
            durability: None,
            checkpointer: None,
            applier,
        }
    }

    /// A database with default configuration.
    pub fn with_defaults() -> Self {
        Self::new(EngineConfig::default())
    }

    /// Wraps this database in an [`Arc`] ready to hand to client threads
    /// (each one via [`crate::ClientHandle::new`] or a plain clone).
    pub fn into_shared(self) -> Arc<Self> {
        Arc::new(self)
    }

    /// Shared I/O statistics.
    pub fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    /// Read-locks the shard of the Index Buffer Space that holds `buffer`
    /// (inspection). The guard dereferences to the shard's
    /// [`IndexBufferSpace`]; holding it blocks that shard's scans and DML
    /// maintenance, so keep it scoped.
    pub fn space_shard(&self, buffer: BufferId) -> ShardRef<'_> {
        ShardRef {
            guard: self.space.shard_read(self.space.shard_of(buffer)),
        }
    }

    /// An epoch-validated, read-only snapshot of the whole Index Buffer
    /// Space: per-buffer entry counts, footprints and skip bitsets, with no
    /// lock held by the caller afterwards. Cheap while nothing mutates
    /// (returns the published snapshot after plain atomic validation);
    /// rebuilds under short shard read locks otherwise.
    pub fn space_snapshot(&self) -> Arc<SpaceSnapshot> {
        self.space.space_snapshot()
    }

    /// Checks the Index Buffer Space's structural invariants across every
    /// shard, including the cross-shard budget reconciliation (tests;
    /// panics on violation).
    pub fn check_space_invariants(&self) {
        self.space.check_invariants();
    }

    /// The shared memory governor (inspection).
    pub fn budget(&self) -> &Arc<MemoryBudget> {
        &self.budget
    }

    /// A point-in-time copy of the governor's byte counters, after
    /// reconciling every shard's resident footprint.
    pub fn memory(&self) -> BudgetSnapshot {
        self.space.sync_all();
        self.budget.snapshot()
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Point-in-time adaptation-queue counters summed across shards:
    /// current depth, batches enqueued / applied / dropped (stale epoch)
    /// / rejected (queue full, applied inline instead). All zero unless
    /// [`EngineConfig::adaptation_apply_mode`] is
    /// [`AdaptationApplyMode::Queued`].
    pub fn adaptation_stats(&self) -> aib_core::AdaptationStats {
        self.space.adaptation_stats()
    }

    /// Blocks until every parked adaptation batch has been applied or
    /// dropped. Makes "convergent under quiescence" testable: after all
    /// in-flight queries finish, `drain_adaptations` brings the buffers to
    /// the state a locked executor would have produced.
    pub fn drain_adaptations(&self) {
        self.space.drain_adaptation_queues();
    }

    // ------------------------------------------------------- durability

    /// Whether this database is file-backed (opened with
    /// [`Database::open`]) rather than in-memory.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Forces a checkpoint: flushes every dirty page to the heap file
    /// (fsync), then rotates the WAL to a fresh log holding only a catalog
    /// snapshot. After a clean checkpoint, reopening replays nothing.
    /// A no-op for in-memory databases.
    ///
    /// Explicit checkpoints stay synchronous; only the *periodic*
    /// checkpoint (every [`EngineConfig::wal_checkpoint_interval`]
    /// records) runs on the background thread, off the commit path.
    pub fn checkpoint(&self) -> EngineResult<()> {
        let Some(pipeline) = &self.durability else {
            return Ok(());
        };
        checkpoint_core(&self.pool, &self.catalog, pipeline)
    }

    /// Checkpoints and releases the database. Durable state needs nothing
    /// beyond [`Database::checkpoint`] — every DML record was fsynced
    /// before its commit was acked, so even skipping `close` loses
    /// nothing; closing just compacts the log so the next open replays
    /// nothing. Also surfaces any failure the background checkpointer
    /// recorded since the last `close`-or-open.
    pub fn close(mut self) -> EngineResult<()> {
        self.checkpoint()?;
        let Some(pipeline) = self.durability.clone() else {
            return Ok(());
        };
        pipeline.shutdown();
        if let Some(handle) = self.checkpointer.take() {
            let _ = handle.join();
        }
        if let Some(message) = pipeline.take_background_error() {
            return Err(EngineError::Internal(format!(
                "background checkpoint failed: {message}"
            )));
        }
        Ok(())
    }

    /// Stages `records` on the commit pipeline (in-memory databases log
    /// nothing). Call under the catalog write lock, so log order is
    /// mutation order; pass the ticket to [`Database::wait_durable`]
    /// *after* releasing the lock.
    fn stage(&self, records: &[WalRecord]) -> Option<Ticket> {
        self.durability.as_ref().and_then(|p| p.stage(records))
    }

    /// Blocks until the staged records are covered by an fsync (leading
    /// the batch if this thread gets there first). The commit is acked to
    /// the caller only when this returns `Ok`.
    fn wait_durable(&self, ticket: Option<Ticket>) -> EngineResult<()> {
        match (&self.durability, ticket) {
            (Some(pipeline), Some(ticket)) => Ok(pipeline.wait_durable(ticket)?),
            _ => Ok(()),
        }
    }

    /// Records appended to the WAL through this handle (0 for in-memory
    /// databases). Crash tests assert this stays **flat** across buffer
    /// growth and tuner adaptation — the paper's "no recovery cost"
    /// property is precisely that those mutations produce no log traffic.
    pub fn wal_records_written(&self) -> u64 {
        self.durability.as_ref().map_or(0, |p| p.records_written())
    }

    /// Covering fsyncs the WAL has issued (0 for in-memory databases).
    /// `wal_records_written() / wal_fsyncs()` is the group-commit
    /// amortization factor the durability bench reports.
    pub fn wal_fsyncs(&self) -> u64 {
        self.durability.as_ref().map_or(0, |p| p.wal_syncs())
    }

    /// Crash-injection hook (tests): the WAL append `n` appends from now
    /// (0 = the very next one) writes a torn frame prefix and fails with
    /// an I/O error, emulating a crash mid-DML. No-op when in-memory.
    pub fn wal_fail_after(&self, n: u64) {
        if let Some(pipeline) = &self.durability {
            pipeline.fail_after(n);
        }
    }

    /// Crash-injection hook (tests): the next checkpoint's heap-file sync
    /// flushes only half its dirty pages and fails without updating the
    /// durable header, emulating a crash mid-checkpoint. No-op when
    /// in-memory.
    pub fn fail_next_heap_sync(&self) {
        self.pool.fail_next_sync();
    }

    /// Rebuilds the whole engine state from replayed WAL `records` into
    /// this freshly assembled (empty) database. Three phases:
    ///
    /// 1. **Metadata** — the leading snapshot (if any) plus DDL records in
    ///    log order yield the final catalog image; DML records fold into a
    ///    last-write-wins slot image per table.
    /// 2. **Heap** — each table adopts its snapshot page list, then forces
    ///    the folded slot states via [`HeapFile::replay_page`].
    /// 3. **Indexes** — one rescan per index definition rebuilds the
    ///    partial index *and* its `C[p]` counters, registering an empty
    ///    Index Buffer; nothing index- or buffer-shaped is read from disk.
    fn recover(&self, records: &[WalRecord]) -> EngineResult<()> {
        let mut images: Vec<TableImage> = Vec::new();
        let mut rest = records;
        if let Some(WalRecord::Snapshot(bytes)) = records.first() {
            images = SnapshotImage::decode(bytes)?.tables;
            rest = records.get(1..).unwrap_or(&[]);
        }
        let mut final_ops: HashMap<u32, BTreeMap<Rid, Option<Vec<u8>>>> = HashMap::new();
        for record in rest {
            match record {
                WalRecord::Insert { table, rid, bytes } => {
                    final_ops
                        .entry(*table)
                        .or_default()
                        .insert(*rid, Some(bytes.clone()));
                }
                WalRecord::Delete { table, rid } => {
                    final_ops.entry(*table).or_default().insert(*rid, None);
                }
                WalRecord::Update {
                    table,
                    old,
                    new,
                    bytes,
                } => {
                    let ops = final_ops.entry(*table).or_default();
                    ops.insert(*old, None);
                    ops.insert(*new, Some(bytes.clone()));
                }
                WalRecord::Ddl(payload) => match DdlOp::decode(payload)? {
                    DdlOp::CreateTable { name, schema } => images.push(TableImage {
                        name,
                        schema,
                        pages: Vec::new(),
                        indexes: Vec::new(),
                    }),
                    DdlOp::CreateIndex { table, def } => {
                        table_image_mut(&mut images, table)?.indexes.push(def);
                    }
                    DdlOp::DropIndex { table, column } => {
                        table_image_mut(&mut images, table)?
                            .indexes
                            .retain(|d| d.column != column);
                    }
                    DdlOp::RedefineCoverage {
                        table,
                        column,
                        coverage,
                    } => {
                        let image = table_image_mut(&mut images, table)?;
                        let def = image
                            .indexes
                            .iter_mut()
                            .find(|d| d.column == column)
                            .ok_or_else(|| {
                                EngineError::Internal(format!(
                                    "wal redefines unknown index on column {column}"
                                ))
                            })?;
                        def.coverage = coverage;
                    }
                },
                WalRecord::Snapshot(_) => {
                    return Err(EngineError::Internal(
                        "snapshot record in the middle of the wal".into(),
                    ));
                }
            }
        }

        let mut catalog = self.catalog.write();
        for (ti, image) in images.into_iter().enumerate() {
            let heap = HeapFile::new(Arc::clone(&self.pool));
            heap.adopt_pages(&image.pages)?;
            if let Some(ops) = final_ops.remove(&(ti as u32)) {
                // Group folded slot ops by page. BTreeMap iteration is
                // rid-ascending, so pages first seen here adopt in
                // ascending page-id order — each table's original
                // creation order.
                let mut by_page: Vec<(PageId, PageOps)> = Vec::new();
                for (rid, bytes) in ops {
                    match by_page.last_mut() {
                        Some((pid, slots)) if *pid == rid.page => slots.push((rid.slot, bytes)),
                        _ => by_page.push((rid.page, vec![(rid.slot, bytes)])),
                    }
                }
                for (pid, slots) in by_page {
                    let refs: Vec<(SlotId, Option<&[u8]>)> =
                        slots.iter().map(|(s, b)| (*s, b.as_deref())).collect();
                    heap.replay_page(pid, &refs)?;
                }
            }
            let name = image.name.clone();
            let mut table = Table {
                name: image.name,
                schema: image.schema,
                heap,
                indexed: Vec::new(),
            };
            for def in image.indexes {
                let ic = self.build_index_from_heap(&table, def)?;
                table.indexed.push(ic);
            }
            catalog.names.insert(name, ti);
            catalog.tables.push(table);
        }
        Ok(())
    }

    /// Recovery phase 3 for one index definition: the same
    /// populate-and-count scan [`Database::create_partial_index`] runs,
    /// against the recovered heap and the *logged* (DDL-time) coverage.
    /// The returned column registers an **empty** buffer whose `C[p]`
    /// counters come from this scan — the "for free" rebuild.
    fn build_index_from_heap(&self, t: &Table, def: IndexDef) -> EngineResult<IndexedColumn> {
        let ci = def.column as usize;
        let column_name = t
            .schema
            .columns()
            .get(ci)
            .map(|c| c.name.clone())
            .ok_or_else(|| {
                EngineError::Internal(format!("logged index column {ci} out of schema range"))
            })?;
        let name = format!("{}.{}", t.name, column_name);
        let mut partial = if def.paged {
            let index = PagedIndex::create(Arc::clone(&self.pool))?;
            PartialIndex::with_index(name.clone(), def.coverage.clone(), Box::new(index))
        } else {
            PartialIndex::new(name.clone(), def.coverage.clone(), def.backend).with_cost(
                AdaptationCost::charged(
                    Arc::clone(&self.stats),
                    self.config.cost_model,
                    self.config.index_entries_per_page,
                ),
            )
        };
        let heap = &t.heap;
        let mut counts: Vec<u32> = vec![0; heap.num_pages() as usize];
        let mut scan_err: Option<EngineError> = None;
        heap.scan_pages(
            |_| false,
            |rid, bytes| {
                let (value, ord) = match decode_site(heap, rid, bytes, ci) {
                    Ok(pair) => pair,
                    Err(e) => {
                        scan_err.get_or_insert(e);
                        return;
                    }
                };
                if partial.covers(&value) {
                    partial.add(value, rid);
                } else if let Some(slot) = counts.get_mut(ord as usize) {
                    *slot += 1;
                }
            },
        )?;
        if let Some(e) = scan_err {
            return Err(e);
        }
        let buffer = def.buffer.map(|cfg| self.space.register(name, cfg, counts));
        Ok(IndexedColumn {
            column: ci,
            partial,
            buffer,
            tuner: None,
            paged: def.paged,
            logged: def,
        })
    }

    /// Creates an empty table.
    ///
    /// Fails with [`EngineError::TableExists`] if a table of that name
    /// already exists.
    pub fn create_table(&self, name: impl Into<String>, schema: Schema) -> EngineResult<()> {
        let name = name.into();
        let ticket = {
            let mut catalog = self.catalog.write();
            if catalog.names.contains_key(&name) {
                return Err(EngineError::TableExists(name));
            }
            let idx = catalog.tables.len();
            let ddl = DdlOp::CreateTable {
                name: name.clone(),
                schema: schema.clone(),
            };
            catalog.tables.push(Table {
                name: name.clone(),
                schema,
                heap: HeapFile::new(Arc::clone(&self.pool)),
                indexed: Vec::new(),
            });
            catalog.names.insert(name, idx);
            self.stage(&[WalRecord::Ddl(ddl.encode())])
        };
        self.wait_durable(ticket)
    }

    /// Looks up a table, returning a read guard that dereferences to it.
    pub fn table(&self, name: &str) -> EngineResult<TableRef<'_>> {
        let guard = self.catalog.read();
        let index = guard.table_index(name)?;
        Ok(TableRef { guard, index })
    }

    // ------------------------------------------------------------------ DML

    /// Inserts a tuple, maintaining all partial indexes and Index Buffers
    /// (Table I, insert column). For a durable database the insert is
    /// staged on the group-commit pipeline and acked only after its
    /// covering fsync; see `crate::commit`.
    pub fn insert(&self, table: &str, tuple: &Tuple) -> EngineResult<Rid> {
        let (rid, ticket) = {
            let mut catalog = self.catalog.write();
            let mut shards = self.space.write_all();
            let (rid, record) = self.insert_locked(&mut catalog, &mut shards, table, tuple)?;
            let ticket = self.stage(&[record]);
            self.verify_checkpoint(&catalog, &shards)?;
            (rid, ticket)
        };
        self.wait_durable(ticket)?;
        Ok(rid)
    }

    /// Insert body under the caller's catalog + shard write locks,
    /// returning the record to stage. Shared by [`Database::insert`] and
    /// [`Database::execute_batch`].
    fn insert_locked(
        &self,
        catalog: &mut Catalog,
        shards: &mut [ShardWriteGuard<'_>],
        table: &str,
        tuple: &Tuple,
    ) -> EngineResult<(Rid, WalRecord)> {
        let ti = catalog.table_index(table)?;
        let bytes = tuple.to_bytes_checked(&catalog.tables[ti].schema)?;
        let rid = catalog.tables[ti].heap.insert(&bytes)?;
        let page = catalog.tables[ti].ordinal(rid)?;
        let t = &mut catalog.tables[ti];
        for ic in &mut t.indexed {
            let value = column_value(tuple, ic.column)?;
            apply_maintenance(
                &self.space,
                shards,
                ic,
                None,
                Some(TupleRef::new(value, rid, page)),
            )?;
        }
        Ok((
            rid,
            WalRecord::Insert {
                table: ti as u32,
                rid,
                bytes,
            },
        ))
    }

    /// Deletes the tuple at `rid` (Table I, delete row).
    pub fn delete(&self, table: &str, rid: Rid) -> EngineResult<()> {
        let ticket = {
            let mut catalog = self.catalog.write();
            let mut shards = self.space.write_all();
            let record = self.delete_locked(&mut catalog, &mut shards, table, rid)?;
            let ticket = self.stage(&[record]);
            self.verify_checkpoint(&catalog, &shards)?;
            ticket
        };
        self.wait_durable(ticket)
    }

    /// Delete body under the caller's catalog + shard write locks.
    fn delete_locked(
        &self,
        catalog: &mut Catalog,
        shards: &mut [ShardWriteGuard<'_>],
        table: &str,
        rid: Rid,
    ) -> EngineResult<WalRecord> {
        let ti = catalog.table_index(table)?;
        let bytes = catalog.tables[ti].heap.get(rid)?;
        let old = Tuple::from_bytes(&bytes)?;
        catalog.tables[ti].heap.delete(rid)?;
        let page = catalog.tables[ti].ordinal(rid)?;
        let t = &mut catalog.tables[ti];
        for ic in &mut t.indexed {
            let value = column_value(&old, ic.column)?;
            apply_maintenance(
                &self.space,
                shards,
                ic,
                Some(TupleRef::new(value, rid, page)),
                None,
            )?;
        }
        Ok(WalRecord::Delete {
            table: ti as u32,
            rid,
        })
    }

    /// Updates the tuple at `rid`, returning its possibly new record id
    /// (Table I, full matrix — the tuple may change pages).
    pub fn update(&self, table: &str, rid: Rid, tuple: &Tuple) -> EngineResult<Rid> {
        let (new_rid, ticket) = {
            let mut catalog = self.catalog.write();
            let mut shards = self.space.write_all();
            let (new_rid, record) =
                self.update_locked(&mut catalog, &mut shards, table, rid, tuple)?;
            let ticket = self.stage(&[record]);
            self.verify_checkpoint(&catalog, &shards)?;
            (new_rid, ticket)
        };
        self.wait_durable(ticket)?;
        Ok(new_rid)
    }

    /// Update body under the caller's catalog + shard write locks.
    fn update_locked(
        &self,
        catalog: &mut Catalog,
        shards: &mut [ShardWriteGuard<'_>],
        table: &str,
        rid: Rid,
        tuple: &Tuple,
    ) -> EngineResult<(Rid, WalRecord)> {
        let ti = catalog.table_index(table)?;
        let bytes = tuple.to_bytes_checked(&catalog.tables[ti].schema)?;
        let old_bytes = catalog.tables[ti].heap.get(rid)?;
        let old = Tuple::from_bytes(&old_bytes)?;
        let old_page = catalog.tables[ti].ordinal(rid)?;
        let new_rid = catalog.tables[ti].heap.update(rid, &bytes)?;
        let new_page = catalog.tables[ti].ordinal(new_rid)?;
        let t = &mut catalog.tables[ti];
        for ic in &mut t.indexed {
            let old_value = column_value(&old, ic.column)?;
            let new_value = column_value(tuple, ic.column)?;
            apply_maintenance(
                &self.space,
                shards,
                ic,
                Some(TupleRef::new(old_value, rid, old_page)),
                Some(TupleRef::new(new_value, new_rid, new_page)),
            )?;
        }
        Ok((
            new_rid,
            WalRecord::Update {
                table: ti as u32,
                old: rid,
                new: new_rid,
                bytes,
            },
        ))
    }

    /// Applies a batch of DML operations under **one** catalog/shard lock
    /// acquisition and **one** commit-pipeline ticket, so a single client
    /// amortizes the covering fsync across the whole batch exactly like
    /// concurrent writers do (the group-commit window's single-threaded
    /// twin). Returns one entry per op: the new [`Rid`] for inserts and
    /// updates, `None` for deletes.
    ///
    /// The batch is **not atomic**: ops apply in order, and on the first
    /// failing op the batch stops — the applied prefix is still staged and
    /// made durable (its fsync is awaited) before the error is returned,
    /// matching the "every acked mutation is durable" contract op by op.
    pub fn execute_batch(&self, ops: &[BatchOp]) -> EngineResult<Vec<Option<Rid>>> {
        let (result, ticket) = {
            let mut catalog = self.catalog.write();
            let mut shards = self.space.write_all();
            let mut records = Vec::with_capacity(ops.len());
            let mut rids = Vec::with_capacity(ops.len());
            let mut failure = None;
            for op in ops {
                let applied = match op {
                    BatchOp::Insert { table, tuple } => self
                        .insert_locked(&mut catalog, &mut shards, table, tuple)
                        .map(|(rid, record)| (Some(rid), record)),
                    BatchOp::Delete { table, rid } => self
                        .delete_locked(&mut catalog, &mut shards, table, *rid)
                        .map(|record| (None, record)),
                    BatchOp::Update { table, rid, tuple } => self
                        .update_locked(&mut catalog, &mut shards, table, *rid, tuple)
                        .map(|(rid, record)| (Some(rid), record)),
                };
                match applied {
                    Ok((rid, record)) => {
                        rids.push(rid);
                        records.push(record);
                    }
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
            let ticket = self.stage(&records);
            self.verify_checkpoint(&catalog, &shards)?;
            let result = match failure {
                Some(e) => Err(e),
                None => Ok(rids),
            };
            (result, ticket)
        };
        self.wait_durable(ticket)?;
        result
    }

    /// Fetches the tuple at `rid`.
    pub fn fetch(&self, table: &str, rid: Rid) -> EngineResult<Tuple> {
        let catalog = self.catalog.read();
        let ti = catalog.table_index(table)?;
        Ok(Tuple::from_bytes(&catalog.tables[ti].heap.get(rid)?)?)
    }

    // ---------------------------------------------------------------- DDL

    /// Creates a partial index on `column` with the given `coverage`,
    /// scanning the table to populate it, and — when `buffer` is given — an
    /// Index Buffer whose counters are initialised from the scan
    /// ("the array of all counters is initialized during the creation of
    /// the partial index", paper §III).
    pub fn create_partial_index(
        &self,
        table: &str,
        column: &str,
        coverage: Coverage,
        backend: IndexBackend,
        buffer: Option<BufferConfig>,
    ) -> EngineResult<()> {
        let partial = PartialIndex::new(format!("{table}.{column}"), coverage, backend).with_cost(
            AdaptationCost::charged(
                Arc::clone(&self.stats),
                self.config.cost_model,
                self.config.index_entries_per_page,
            ),
        );
        self.install_partial_index(table, column, partial, backend, buffer, false)
    }

    /// Like [`Database::create_partial_index`], but the index is
    /// **disk-resident**: a [`PagedIndex`] whose nodes flow through the same
    /// buffer pool as the table's heap pages, so probe and maintenance I/O
    /// is real page traffic rather than a synthetic charge. Integer columns
    /// only.
    pub fn create_paged_partial_index(
        &self,
        table: &str,
        column: &str,
        coverage: Coverage,
        buffer: Option<BufferConfig>,
    ) -> EngineResult<()> {
        let index = PagedIndex::create(Arc::clone(&self.pool))?;
        let partial =
            PartialIndex::with_index(format!("{table}.{column}"), coverage, Box::new(index));
        // The backend tag is meaningless for paged indexes (recovery
        // recreates a PagedIndex); log the default.
        self.install_partial_index(
            table,
            column,
            partial,
            IndexBackend::default(),
            buffer,
            true,
        )
    }

    fn install_partial_index(
        &self,
        table: &str,
        column: &str,
        mut partial: PartialIndex,
        backend: IndexBackend,
        buffer: Option<BufferConfig>,
        paged: bool,
    ) -> EngineResult<()> {
        let mut catalog = self.catalog.write();
        let ti = catalog.table_index(table)?;
        let ci = catalog.column_index(ti, column)?;
        if catalog.tables[ti].indexed_column(ci).is_some() {
            return Err(EngineError::IndexExists(format!("{table}.{column}")));
        }
        let heap = &catalog.tables[ti].heap;
        let mut counts: Vec<u32> = vec![0; heap.num_pages() as usize];
        let mut scan_err: Option<EngineError> = None;
        heap.scan_pages(
            |_| false,
            |rid, bytes| {
                let (value, ord) = match decode_site(heap, rid, bytes, ci) {
                    Ok(pair) => pair,
                    Err(e) => {
                        scan_err.get_or_insert(e);
                        return;
                    }
                };
                if partial.covers(&value) {
                    partial.add(value, rid);
                } else if let Some(slot) = counts.get_mut(ord as usize) {
                    *slot += 1;
                }
            },
        )?;
        if let Some(e) = scan_err {
            return Err(e);
        }
        let def = IndexDef {
            column: ci as u32,
            coverage: partial.coverage().clone(),
            backend,
            buffer,
            paged,
        };
        let buffer_id = buffer.map(|cfg| {
            self.space
                .register(format!("{table}.{column}"), cfg, counts)
        });
        catalog.tables[ti].indexed.push(IndexedColumn {
            column: ci,
            partial,
            buffer: buffer_id,
            tuner: None,
            paged,
            logged: def.clone(),
        });
        self.space.sync_all();
        let ticket = self.stage(&[WalRecord::Ddl(
            DdlOp::CreateIndex {
                table: ti as u32,
                def,
            }
            .encode(),
        )]);
        self.verify_checkpoint_now(&catalog)?;
        drop(catalog);
        self.wait_durable(ticket)
    }

    /// Drops the partial index (and Index Buffer contents) of a column.
    /// Subsequent queries on the column fall back to plain scans.
    ///
    /// The buffer's slot in the Index Buffer Space stays registered but
    /// empty — buffer ids are stable handles and an empty buffer costs
    /// nothing (its history only ticks).
    pub fn drop_partial_index(&self, table: &str, column: &str) -> EngineResult<()> {
        let mut catalog = self.catalog.write();
        let ti = catalog.table_index(table)?;
        let ci = catalog.column_index(ti, column)?;
        let slot = catalog.tables[ti]
            .indexed_column(ci)
            .ok_or_else(|| EngineError::NoSuchIndex(format!("{table}.{column}")))?;
        let ic = catalog.tables[ti].indexed.remove(slot);
        if let Some(bid) = ic.buffer {
            self.space
                .shard_write(self.space.shard_of(bid))
                .clear_buffer(bid);
        }
        let ticket = self.stage(&[WalRecord::Ddl(
            DdlOp::DropIndex {
                table: ti as u32,
                column: ci as u32,
            }
            .encode(),
        )]);
        self.verify_checkpoint_now(&catalog)?;
        drop(catalog);
        self.wait_durable(ticket)
    }

    /// Attaches an online tuner to an indexed column. The column's coverage
    /// must be a [`Coverage::Set`] (the tuner adapts value by value);
    /// anything else is [`EngineError::Unsupported`].
    pub fn attach_tuner(&self, table: &str, column: &str, config: TunerConfig) -> EngineResult<()> {
        let mut catalog = self.catalog.write();
        let ti = catalog.table_index(table)?;
        let ci = catalog.column_index(ti, column)?;
        let slot = catalog.tables[ti]
            .indexed_column(ci)
            .ok_or_else(|| EngineError::NoSuchIndex(format!("{table}.{column}")))?;
        let ic = &mut catalog.tables[ti].indexed[slot];
        if !matches!(ic.partial.coverage(), Coverage::Set(_)) {
            return Err(EngineError::Unsupported(format!(
                "tuned columns need Coverage::Set, {table}.{column} has {:?}",
                ic.partial.coverage()
            )));
        }
        ic.tuner = Some(OnlineTuner::new(config));
        Ok(())
    }

    /// Replaces the coverage of an indexed column wholesale (experiment 4's
    /// partial-index redefinition), rebuilding entries and counters with a
    /// full scan.
    pub fn redefine_coverage(
        &self,
        table: &str,
        column: &str,
        coverage: Coverage,
    ) -> EngineResult<()> {
        let mut catalog = self.catalog.write();
        let ti = catalog.table_index(table)?;
        let ci = catalog.column_index(ti, column)?;
        let slot = catalog.tables[ti]
            .indexed_column(ci)
            .ok_or_else(|| EngineError::NoSuchIndex(format!("{table}.{column}")))?;
        let t = &mut catalog.tables[ti];
        let ic = &mut t.indexed[slot];
        // Redefinition *is* DDL: the logged coverage moves with it (unlike
        // tuner adaptation, which recovery deliberately reverts).
        ic.logged.coverage = coverage.clone();
        let ddl = DdlOp::RedefineCoverage {
            table: ti as u32,
            column: ci as u32,
            coverage: coverage.clone(),
        };
        ic.partial.redefine_coverage(coverage);
        // Rebuild entries and counters from the heap; any buffered pages are
        // invalidated (their composition changed under the buffer). Both the
        // clear and the counter reset bump the shard epoch, so snapshots
        // published before the redefinition stop validating.
        if let Some(bid) = ic.buffer {
            self.space
                .shard_write(self.space.shard_of(bid))
                .clear_buffer(bid);
        }
        let mut counts: Vec<u32> = vec![0; t.heap.num_pages() as usize];
        let heap = &t.heap;
        let partial = &mut ic.partial;
        let mut scan_err: Option<EngineError> = None;
        heap.scan_pages(
            |_| false,
            |rid, bytes| {
                let (value, ord) = match decode_site(heap, rid, bytes, ci) {
                    Ok(pair) => pair,
                    Err(e) => {
                        scan_err.get_or_insert(e);
                        return;
                    }
                };
                if partial.covers(&value) {
                    if !partial.contains(&value, rid) {
                        partial.add(value, rid);
                    }
                } else if let Some(slot) = counts.get_mut(ord as usize) {
                    *slot += 1;
                }
            },
        )?;
        if let Some(e) = scan_err {
            return Err(e);
        }
        if let Some(bid) = ic.buffer {
            self.space
                .shard_write(self.space.shard_of(bid))
                .reset_counters(bid, counts);
        }
        let ticket = self.stage(&[WalRecord::Ddl(ddl.encode())]);
        self.verify_checkpoint_now(&catalog)?;
        drop(catalog);
        self.wait_durable(ticket)
    }

    /// Drains under-occupied pages by relocating their tuples into pages
    /// with free space, maintaining every partial index and Index Buffer
    /// through the moves (Table I with `p_old ≠ p_new` and unchanged
    /// values). Pages holding fewer live tuples than `min_occupancy` times
    /// the table's average are drained. Returns `(pages_drained,
    /// tuples_moved)`.
    ///
    /// Vacuuming improves the physical/logical correlation story of paper
    /// Fig. 3 in reverse: it *concentrates* tuples, raising page occupancy
    /// so page-skipping decisions are about full pages.
    pub fn vacuum(&self, table: &str, min_occupancy: f64) -> EngineResult<(u32, u64)> {
        let (drained, moved, ticket) = {
            let mut catalog = self.catalog.write();
            let mut shards = self.space.write_all();
            let ti = catalog.table_index(table)?;
            let pages = catalog.tables[ti].heap.num_pages();
            if pages == 0 {
                return Ok((0, 0));
            }
            let avg = catalog.tables[ti].heap.live_tuples() as f64 / pages as f64;
            let threshold = (avg * min_occupancy).floor() as usize;
            let mut drained = 0;
            let mut moved = 0;
            let mut records = Vec::new();
            for ord in 0..pages {
                let tuples = catalog.tables[ti].page_tuples(ord)?;
                if tuples.is_empty() || tuples.len() >= threshold {
                    continue;
                }
                drained += 1;
                for (rid, tuple) in tuples {
                    let new_rid = catalog.tables[ti].heap.relocate(rid)?;
                    let new_ord = catalog.tables[ti].ordinal(new_rid)?;
                    moved += 1;
                    let t = &mut catalog.tables[ti];
                    for ic in &mut t.indexed {
                        let value = column_value(&tuple, ic.column)?;
                        apply_maintenance(
                            &self.space,
                            &mut shards,
                            ic,
                            Some(TupleRef::new(value.clone(), rid, ord)),
                            Some(TupleRef::new(value, new_rid, new_ord)),
                        )?;
                    }
                    // A relocation is an update whose value didn't change.
                    records.push(WalRecord::Update {
                        table: ti as u32,
                        old: rid,
                        new: new_rid,
                        bytes: tuple.to_bytes(),
                    });
                }
            }
            // The whole vacuum rides one ticket — one covering fsync no
            // matter how many tuples moved.
            let ticket = self.stage(&records);
            self.verify_checkpoint(&catalog, &shards)?;
            (drained, moved, ticket)
        };
        self.wait_durable(ticket)?;
        Ok((drained, moved))
    }

    // ------------------------------------------------------------ queries

    /// Executes a query, returning the result set together with its full
    /// metrics as one [`ExecOutcome`].
    ///
    /// Safe to call from many client threads at once: read queries hold the
    /// catalog read lock end to end and serialize only on the queried
    /// buffer's shard for the short write sections (Algorithm 2 selection
    /// before the sweep, staged apply after it). Fully-skippable queries
    /// answer lock-free from the published [`SpaceSnapshot`]. Tuned point
    /// queries adapt the partial index and therefore take the exclusive
    /// (write-locked) path.
    ///
    /// This entry point keeps a query-local [`SnapshotCache`]; clients
    /// issuing many queries should go through [`crate::ClientHandle`],
    /// which reuses one cache across calls via
    /// [`Database::execute_with_cache`].
    pub fn execute(&self, query: &Query) -> EngineResult<ExecOutcome> {
        let mut cache = SnapshotCache::new();
        let outcome = self.execute_with_cache(query, &mut cache);
        // Deferred Table II events outlive the cache only in the shared
        // pending cells; publish them before the cache drops.
        cache.flush();
        outcome
    }

    /// [`Database::execute`] with a caller-owned [`SnapshotCache`]: the
    /// cache carries the validated space snapshot and locally deferred
    /// Table II events across queries, so a run of fully-skippable queries
    /// performs no shared write at all until the next slow-path boundary
    /// (any lock acquisition) flushes and drains them in deferral order.
    pub fn execute_with_cache(
        &self,
        query: &Query,
        cache: &mut SnapshotCache,
    ) -> EngineResult<ExecOutcome> {
        // Relaxed: the sequence number only needs uniqueness, not ordering
        // against other memory operations.
        let seq = self.queries_executed.fetch_add(1, Ordering::Relaxed);
        let before = self.stats.snapshot();
        let start = Instant::now();

        let catalog = self.catalog.read();
        let ti = catalog.table_index(&query.table)?;
        let ci = catalog.column_index(ti, &query.column)?;
        let slot = catalog.tables[ti].indexed_column(ci);

        // Tuner adaptation rewrites the partial index — a catalog write.
        let tuned_point = matches!(&query.predicate, Predicate::Equals(_))
            && slot.is_some_and(|s| catalog.tables[ti].indexed[s].tuner.is_some());
        if tuned_point {
            drop(catalog);
            // The exclusive path drains pending events on shard entry; the
            // cache's deferrals must be published first to stay in order.
            cache.flush();
            return self.execute_exclusive(query, seq, before, start);
        }

        let t = &catalog.tables[ti];
        let (result, scan_stats, scan_threads) = match slot {
            None => (self.plain_scan(t, ci, &query.predicate)?, None, 1),
            Some(slot) => {
                let ic = &t.indexed[slot];
                let hit = match &query.predicate {
                    Predicate::Equals(v) => ic.partial.covers(v),
                    // A range is a hit only if coverage is complete AND
                    // the backend can range-scan (hash indexes cannot).
                    Predicate::Between(lo, hi) => ic.partial.lookup_range(lo, hi).is_some(),
                };
                match ic.buffer {
                    Some(bid) if !hit => {
                        let heap_pages = t.heap.num_pages();
                        let fast = cache
                            .ensure(&self.space)
                            .buffer(bid)
                            .is_some_and(|b| b.fully_skippable(heap_pages));
                        if fast {
                            // Lock-free fast path: the validated snapshot
                            // proves every page is skippable and the buffer
                            // is empty; Table II is deferred locally.
                            cache.record(Some(bid), false);
                            let (r, s, threads) =
                                self.fast_path_scan(t, slot, &query.predicate, heap_pages)?;
                            (r, Some(s), threads)
                        } else {
                            // Partially-skippable miss: try the
                            // snapshot-planned read-only path first (unless
                            // disabled); it declines — and the locked
                            // prepare/apply path takes over — whenever the
                            // plan cannot be proven equivalent.
                            let planned = if self.config.adaptation_apply_mode
                                != AdaptationApplyMode::Locked
                            {
                                self.buffered_scan_planned(t, slot, ci, &query.predicate, cache)?
                            } else {
                                None
                            };
                            match planned {
                                Some((r, s, threads)) => (r, Some(s), threads),
                                None => {
                                    // Table II flushes into the scan's
                                    // prepare write section, which drains
                                    // it in order.
                                    let (r, s, threads) = self.buffered_scan_shared(
                                        t,
                                        slot,
                                        ci,
                                        &query.predicate,
                                        cache,
                                    )?;
                                    (r, Some(s), threads)
                                }
                            }
                        }
                    }
                    buffer => {
                        // Table II: every query adjusts every buffer's
                        // history — deferred locally, drained by the next
                        // write-side entry into each shard.
                        cache.ensure(&self.space);
                        cache.record(buffer, hit);
                        if hit {
                            (self.index_hit(t, slot, &query.predicate)?, None, 1)
                        } else {
                            (self.plain_scan(t, ci, &query.predicate)?, None, 1)
                        }
                    }
                }
            }
        };

        let buffer_entries = cache.ensure(&self.space).buffer_entries();
        let metrics = self.finish_metrics(
            seq,
            &result,
            scan_stats,
            scan_threads,
            &before,
            start,
            buffer_entries,
        );
        self.verify_checkpoint_now(&catalog)?;
        Ok(ExecOutcome { result, metrics })
    }

    /// The lock-free answer to a fully-skippable buffered miss: no page is
    /// read, no buffer entry can match (the snapshot proved the buffer
    /// empty), and the only result rows a straddling range can have live in
    /// the partial index. Produces the same [`ScanStats`] the staged scan
    /// reports for this state — zero reads, one skip run covering the whole
    /// heap — so metrics cannot tell the paths apart.
    fn fast_path_scan(
        &self,
        t: &Table,
        slot: usize,
        predicate: &Predicate,
        heap_pages: u32,
    ) -> EngineResult<(QueryResult, ScanStats, usize)> {
        let ic = &t.indexed[slot];
        let threads = planned_scan_threads(heap_pages, self.config.scan_threads);
        let stats = ScanStats {
            pages_skipped: heap_pages,
            skip_runs: u32::from(heap_pages > 0),
            ..ScanStats::default()
        };
        let mut rids = Vec::new();
        if let Predicate::Between(lo, hi) = predicate {
            // The covered fraction of a straddling range, exactly as the
            // staged scan charges and answers it.
            if !ic.paged {
                self.stats.record_reads(
                    self.config.index_probe_pages,
                    self.config.cost_model.read_us,
                );
            }
            rids.extend(ic.partial.entries_in(lo, hi));
            rids.sort_unstable();
            rids.dedup();
        }
        Ok((
            QueryResult {
                rids,
                path: AccessPath::BufferedScan,
            },
            stats,
            threads,
        ))
    }

    /// The snapshot-planned miss path: Algorithm 1's prepare — page
    /// selection *and* the buffer probe — runs read-only against the
    /// validated [`SpaceSnapshot`], with **no shard write lock held**;
    /// staged insertions are then applied inline (short write section) or
    /// parked on the adaptation queue, per
    /// [`EngineConfig::adaptation_apply_mode`].
    ///
    /// Returns `None` — the caller falls back to the locked
    /// [`Database::buffered_scan_shared`] — whenever the plan cannot be
    /// proven equivalent to the locked prepare:
    /// * the snapshot lacks the buffer or [`ShardedSpace::plan_selection`]
    ///   declines (displacement reachable, or a limited budget would admit
    ///   pages — committing those outside the lock could race the governor);
    /// * the buffer is non-empty and the epoch guard catches a shard
    ///   mutation between the snapshot and the probe.
    ///
    /// An empty buffer needs no probe at all, so the steady state — every
    /// selectable page already indexed, nothing staged — runs entirely
    /// lock-free. A non-empty buffer is probed under the shard *read*
    /// latch (concurrent readers share it; writers exclude it), with the
    /// shard epoch re-checked under the latch: a match proves the live
    /// buffer is exactly the snapshot's, so the probe returns the same rid
    /// set the locked prepare would. Table II events stay deferred in the
    /// client's [`SnapshotCache`] (the fast-path mechanism); the planned
    /// prepare never reads histories — selections that would (displacement
    /// benefit comparisons) are not plannable by construction.
    fn buffered_scan_planned(
        &self,
        t: &Table,
        slot: usize,
        ci: usize,
        predicate: &Predicate,
        cache: &mut SnapshotCache,
    ) -> EngineResult<Option<(QueryResult, ScanStats, usize)>> {
        let ic = &t.indexed[slot];
        let bid = ic.buffer.ok_or_else(|| {
            EngineError::Internal("buffered_scan dispatched without a buffer".into())
        })?;
        // Clone the Arc so the summary borrow is independent of `cache`
        // (which `record` below borrows mutably).
        let snapshot = Arc::clone(cache.ensure(&self.space));
        let Some(summary) = snapshot.buffer(bid) else {
            return Ok(None);
        };
        let Some(selection) = self.space.plan_selection(&snapshot, bid) else {
            return Ok(None);
        };
        // Algorithm 1 lines 8–10: the buffer's own matches.
        let buffer_rids = if summary.entries() == 0 {
            Vec::new()
        } else {
            let shard = self.space.shard_read(self.space.shard_of(bid));
            if shard.epoch() != summary.epoch() {
                // Something mutated the shard since the snapshot; the
                // bitset/selection may be stale. Fail closed.
                return Ok(None);
            }
            aib_core::buffer_scan_rids(shard.buffer(bid), predicate)
        };

        let partial = &ic.partial;
        let coverage = partial.coverage();
        let covered = |v: &Value| coverage.covers(v);
        let threads = planned_scan_threads(t.heap.num_pages(), self.config.scan_threads);
        let mut rids = Vec::new();
        let ScanPrep { mut stats, plan } = aib_core::prepare_scan_from_snapshot(
            &t.heap,
            summary.skip(),
            &selection,
            buffer_rids,
            predicate,
            &mut rids,
        );
        let partition_pages = summary.partition_pages();
        let epoch = summary.epoch();
        // Table II: deferred locally, like the fast path. The queried
        // buffer's next write-side entry (possibly this query's own inline
        // apply below, after the flush) drains it in deferral order.
        cache.record(Some(bid), false);

        let chunk = sweep_plan(
            &t.heap,
            &plan,
            partition_pages,
            ci,
            &covered,
            predicate,
            threads,
        )?;
        stats.pages_read = chunk.pages_read;
        stats.pages_skipped = chunk.pages_skipped;
        rids.extend(chunk.matches);

        if !chunk.staged.is_empty() {
            let staged_pages = chunk.staged.len() as u32;
            // Queued mode parks the batch for the background applier; a
            // full queue (or inline mode) applies right here, exactly like
            // the locked path's apply section.
            let inline_staged = if self.config.adaptation_apply_mode == AdaptationApplyMode::Queued
            {
                match self.space.push_adaptation(aib_core::AdaptationBatch {
                    buffer: bid,
                    epoch,
                    staged: chunk.staged,
                }) {
                    Ok(()) => {
                        stats.pages_staged = staged_pages;
                        None
                    }
                    Err(rejected) => Some(rejected.staged),
                }
            } else {
                Some(chunk.staged)
            };
            if let Some(staged) = inline_staged {
                // Flush first so the shard-write drain applies this query's
                // Table II events before any history is read again.
                cache.flush();
                let mut space = self.space.shard_write(self.space.shard_of(bid));
                space.with_buffer_mut(bid, |buffer, counters| {
                    apply_staged_checked(buffer, counters, staged, &mut stats);
                });
                space.sync_budget();
            }
        }
        stats.matches = rids.len();

        if let Predicate::Between(lo, hi) = predicate {
            // Straddling range: the covered fraction answers from the
            // partial index, deduplicated against scanned pages — same as
            // the locked and fast paths.
            if !ic.paged {
                self.stats.record_reads(
                    self.config.index_probe_pages,
                    self.config.cost_model.read_us,
                );
            }
            rids.extend(partial.entries_in(lo, hi));
            rids.sort_unstable();
            rids.dedup();
        }
        Ok(Some((
            QueryResult {
                rids,
                path: AccessPath::BufferedScan,
            },
            stats,
            threads,
        )))
    }

    /// The write-locked execution path: tuned point queries (the tuner
    /// mutates the partial index), run with the catalog and every shard
    /// held — equivalent to the single-threaded executor.
    fn execute_exclusive(
        &self,
        query: &Query,
        seq: usize,
        before: IoSnapshot,
        start: Instant,
    ) -> EngineResult<ExecOutcome> {
        let mut catalog = self.catalog.write();
        let mut shards = self.space.write_all();
        let catalog = &mut *catalog;
        // Re-resolve under the write lock (the catalog may have changed
        // between the read and write acquisitions).
        let ti = catalog.table_index(&query.table)?;
        let ci = catalog.column_index(ti, &query.column)?;
        let slot = catalog.tables[ti].indexed_column(ci);

        let (result, scan_stats, scan_threads) = match slot {
            None => (
                self.plain_scan(&catalog.tables[ti], ci, &query.predicate)?,
                None,
                1,
            ),
            Some(slot) => {
                let t = &catalog.tables[ti];
                let ic = &t.indexed[slot];
                let hit = match &query.predicate {
                    Predicate::Equals(v) => ic.partial.covers(v),
                    Predicate::Between(lo, hi) => ic.partial.lookup_range(lo, hi).is_some(),
                };
                let buffer = ic.buffer;
                // Table II: every query adjusts every buffer's history; the
                // queried buffer lives in exactly one shard, every other
                // shard only ticks.
                for (i, shard) in shards.iter_mut().enumerate() {
                    let queried = buffer.filter(|&b| self.space.shard_of(b) == i);
                    shard.on_query(queried, hit);
                }
                if hit {
                    (self.index_hit(t, slot, &query.predicate)?, None, 1)
                } else if let Some(bid) = buffer {
                    let shard = self.space.shard_of(bid);
                    let (r, s, threads) = self.buffered_scan_exclusive(
                        &mut shards[shard],
                        t,
                        slot,
                        ci,
                        &query.predicate,
                    )?;
                    (r, Some(s), threads)
                } else {
                    (self.plain_scan(t, ci, &query.predicate)?, None, 1)
                }
            }
        };

        // Online tuning: observe the queried value, adapt the partial index.
        if let (Some(slot), Predicate::Equals(v)) = (slot, &query.predicate) {
            if catalog.tables[ti].indexed[slot].tuner.is_some() {
                apply_tuning(
                    &mut catalog.tables[ti],
                    &self.space,
                    &mut shards,
                    slot,
                    v,
                    &result.rids,
                )?;
            }
        }

        for shard in &shards {
            shard.sync_budget();
        }
        let buffer_entries = (0..self.space.num_buffers())
            .map(|b| shards[self.space.shard_of(b)].buffer(b).num_entries())
            .collect();
        let metrics = self.finish_metrics(
            seq,
            &result,
            scan_stats,
            scan_threads,
            &before,
            start,
            buffer_entries,
        );
        self.verify_checkpoint(catalog, &shards)?;
        Ok(ExecOutcome { result, metrics })
    }

    /// Assembles a query's [`QueryMetrics`]; `buffer_entries` comes from
    /// either the validated snapshot (shared path) or the held shard guards
    /// (exclusive path), so no lock is taken here.
    #[allow(clippy::too_many_arguments)]
    fn finish_metrics(
        &self,
        seq: usize,
        result: &QueryResult,
        scan: Option<ScanStats>,
        scan_threads: usize,
        before: &IoSnapshot,
        start: Instant,
        buffer_entries: Vec<usize>,
    ) -> QueryMetrics {
        let wall = start.elapsed();
        let io = self.stats.snapshot().since(before);
        QueryMetrics {
            seq,
            path: result.path,
            result_count: result.count(),
            io,
            wall,
            scan,
            scan_threads,
            buffer_entries,
            memory: self.budget.snapshot(),
            adaptation: self.space.adaptation_stats(),
        }
    }

    /// Index-hit path: probe the partial index, fetch matching tuples.
    fn index_hit(
        &self,
        t: &Table,
        slot: usize,
        predicate: &Predicate,
    ) -> EngineResult<QueryResult> {
        let ic = &t.indexed[slot];
        if !ic.paged {
            // Charge the simulated tree descent (in-memory partial indexes
            // stand in for disk-resident ones; see DESIGN.md §4). Paged
            // indexes pay real page I/O instead.
            self.stats.record_reads(
                self.config.index_probe_pages,
                self.config.cost_model.read_us,
            );
        }
        let rids = match predicate {
            Predicate::Equals(v) => ic.partial.lookup(v),
            Predicate::Between(lo, hi) => ic.partial.lookup_range(lo, hi).ok_or_else(|| {
                EngineError::Internal("index_hit on a range the backend cannot scan".into())
            })?,
        };
        // Materialise results: the paper's "index scan" baseline includes
        // fetching the qualifying tuples from their pages.
        for &rid in &rids {
            t.heap.get(rid)?;
        }
        Ok(QueryResult {
            rids,
            path: AccessPath::PartialIndex,
        })
    }

    /// Miss path with an Index Buffer, multi-client flavour: paper
    /// Algorithm 1 split at the staged-apply boundary so the sweep runs with
    /// **no engine lock held**.
    ///
    /// 1. *Prepare* (shard write lock): the cache's deferred Table II
    ///    events — including this query's — flush and drain in order on
    ///    entry, then Algorithm 2 selection — the scan's single RNG draw —
    ///    the buffer scan, and the counter/selection snapshots.
    /// 2. *Sweep* (no lock): [`sweep_plan`] reads table pages through the
    ///    concurrent pool, staging would-be buffer insertions.
    /// 3. *Apply* (shard write lock): [`apply_staged_checked`] inserts
    ///    staged pages whose `C[p]` is still non-zero — a page already
    ///    indexed by an overlapping scan is skipped, not double-inserted —
    ///    then reconciles the governor.
    ///
    /// The caller holds the catalog read lock throughout, so the heap and
    /// the coverage predicate cannot change mid-query; uncontended, the
    /// counters, partitions and [`ScanStats`] are bit-for-bit what the
    /// sequential executor produces.
    fn buffered_scan_shared(
        &self,
        t: &Table,
        slot: usize,
        ci: usize,
        predicate: &Predicate,
        cache: &mut SnapshotCache,
    ) -> EngineResult<(QueryResult, ScanStats, usize)> {
        let ic = &t.indexed[slot];
        let bid = ic.buffer.ok_or_else(|| {
            EngineError::Internal("buffered_scan dispatched without a buffer".into())
        })?;
        let partial = &ic.partial;
        // The coverage test is the only piece of the partial index the scan
        // workers need, and unlike the index itself it is `Sync`.
        let coverage = partial.coverage();
        let covered = |v: &Value| coverage.covers(v);
        let threads = planned_scan_threads(t.heap.num_pages(), self.config.scan_threads);
        let mut rids = Vec::new();

        // Table II first (deferred then flushed): the shard-write entry
        // below drains the pending cells in deferral order, so the history
        // Algorithm 2 reads already includes this query's events — the
        // order the sequential executor produces.
        cache.ensure(&self.space);
        cache.record(Some(bid), false);
        cache.flush();

        let shard = self.space.shard_of(bid);
        let (prep, partition_pages) = {
            let mut space = self.space.shard_write(shard);
            let prep = prepare_scan(&t.heap, &mut space, bid, predicate, &mut rids);
            let partition_pages = space.buffer(bid).config().partition_pages;
            (prep, partition_pages)
        };
        let ScanPrep { mut stats, plan } = prep;

        let chunk = sweep_plan(
            &t.heap,
            &plan,
            partition_pages,
            ci,
            &covered,
            predicate,
            threads,
        )?;
        stats.pages_read = chunk.pages_read;
        stats.pages_skipped = chunk.pages_skipped;
        rids.extend(chunk.matches);

        {
            let mut space = self.space.shard_write(shard);
            space.with_buffer_mut(bid, |buffer, counters| {
                apply_staged_checked(buffer, counters, chunk.staged, &mut stats);
            });
            space.sync_budget();
        }
        stats.matches = rids.len();

        if let Predicate::Between(lo, hi) = predicate {
            // A straddling range also matches *covered* tuples, which live
            // in pages the scan may have skipped — answer that fraction from
            // the partial index and deduplicate against scanned pages.
            if !ic.paged {
                self.stats.record_reads(
                    self.config.index_probe_pages,
                    self.config.cost_model.read_us,
                );
            }
            rids.extend(partial.entries_in(lo, hi));
            rids.sort_unstable();
            rids.dedup();
        }
        Ok((
            QueryResult {
                rids,
                path: AccessPath::BufferedScan,
            },
            stats,
            threads,
        ))
    }

    /// Miss path with an Index Buffer, write-locked flavour (tuned queries):
    /// the classic interleaved Algorithm 1 against the exclusively held
    /// space.
    fn buffered_scan_exclusive(
        &self,
        space: &mut IndexBufferSpace,
        t: &Table,
        slot: usize,
        ci: usize,
        predicate: &Predicate,
    ) -> EngineResult<(QueryResult, ScanStats, usize)> {
        let ic = &t.indexed[slot];
        let bid = ic.buffer.ok_or_else(|| {
            EngineError::Internal("buffered_scan dispatched without a buffer".into())
        })?;
        let partial = &ic.partial;
        let coverage = partial.coverage();
        let covered = |v: &Value| coverage.covers(v);
        let threads = planned_scan_threads(t.heap.num_pages(), self.config.scan_threads);
        let mut rids = Vec::new();
        let stats = if threads > 1 {
            indexing_scan_parallel(
                &t.heap, space, bid, ci, &covered, predicate, &mut rids, threads,
            )?
        } else {
            indexing_scan(&t.heap, space, bid, ci, &covered, predicate, &mut rids)?
        };
        if let Predicate::Between(lo, hi) = predicate {
            if !ic.paged {
                self.stats.record_reads(
                    self.config.index_probe_pages,
                    self.config.cost_model.read_us,
                );
            }
            rids.extend(partial.entries_in(lo, hi));
            rids.sort_unstable();
            rids.dedup();
        }
        Ok((
            QueryResult {
                rids,
                path: AccessPath::BufferedScan,
            },
            stats,
            threads,
        ))
    }

    /// Baseline: full table scan, no skipping.
    fn plain_scan(
        &self,
        t: &Table,
        ci: usize,
        predicate: &Predicate,
    ) -> Result<QueryResult, StorageError> {
        let mut rids = Vec::new();
        let mut decode_err = None;
        t.heap.scan_pages(
            |_| false,
            |rid, bytes| match Tuple::read_column(bytes, ci) {
                Ok(v) => {
                    if predicate.matches(&v) {
                        rids.push(rid);
                    }
                }
                Err(e) => decode_err = Some(e),
            },
        )?;
        if let Some(e) = decode_err {
            return Err(e);
        }
        Ok(QueryResult {
            rids,
            path: AccessPath::PlainScan,
        })
    }

    /// Explains how a query would execute, without executing it: the access
    /// path, how many pages a scan would read vs. skip, and the exact
    /// cardinality when the partial index can answer it (§VI contrast: the
    /// Index Buffer's own bookkeeping makes this free, unlike what-if
    /// optimizer calls).
    pub fn explain(&self, query: &Query) -> EngineResult<crate::explain::Explanation> {
        let catalog = self.catalog.read();
        let ti = catalog.table_index(&query.table)?;
        let ci = catalog.column_index(ti, &query.column)?;
        let table_pages = catalog.tables[ti].heap.num_pages();
        let Some(slot) = catalog.tables[ti].indexed_column(ci) else {
            return Ok(crate::explain::explanation(
                AccessPath::PlainScan,
                false,
                false,
                table_pages,
                table_pages,
                0,
                None,
                0,
                0,
                1,
                0,
            ));
        };
        let ic = &catalog.tables[ti].indexed[slot];
        let hit = match &query.predicate {
            Predicate::Equals(v) => ic.partial.covers(v),
            Predicate::Between(lo, hi) => ic.partial.lookup_range(lo, hi).is_some(),
        };
        // The snapshot answers everything explain needs — entry counts,
        // footprints, skip bitsets — without locking any shard.
        let snapshot = self.space.space_snapshot();
        if hit {
            let cardinality = match (
                &query.predicate,
                crate::explain::is_predicate_point(&query.predicate),
            ) {
                (Predicate::Equals(v), true) => Some(ic.partial.lookup(v).len()),
                _ => None,
            };
            let summary = ic.buffer.and_then(|b| snapshot.buffer(b));
            return Ok(crate::explain::explanation(
                AccessPath::PartialIndex,
                true,
                ic.buffer.is_some(),
                table_pages,
                0,
                0,
                cardinality,
                summary.map_or(0, |s| s.entries()),
                summary.map_or(0, |s| s.footprint()),
                1,
                0,
            ));
        }
        match ic.buffer {
            Some(bid) => {
                let summary = snapshot.buffer(bid).ok_or_else(|| {
                    EngineError::Internal(format!("buffer {bid} missing from space snapshot"))
                })?;
                // Pages with C[p] > 0; pages beyond the tracked range are
                // fully covered and skippable. The snapshot's skip bitset
                // answers both counts without walking C[p].
                let skip = summary.skip();
                let to_read = skip.len() - skip.count();
                let skip_runs = skip.skippable_runs().count() as u32;
                Ok(crate::explain::explanation(
                    AccessPath::BufferedScan,
                    true,
                    true,
                    table_pages,
                    to_read,
                    skip_runs,
                    None,
                    summary.entries(),
                    summary.footprint(),
                    planned_scan_threads(table_pages, self.config.scan_threads),
                    self.space.adaptation_stats().depth,
                ))
            }
            None => Ok(crate::explain::explanation(
                AccessPath::PlainScan,
                true,
                false,
                table_pages,
                table_pages,
                0,
                None,
                0,
                0,
                1,
                0,
            )),
        }
    }

    /// Coverage of an indexed column (inspection).
    pub fn coverage(&self, table: &str, column: &str) -> Option<Coverage> {
        let catalog = self.catalog.read();
        let ti = catalog.table_index(table).ok()?;
        let ci = catalog.column_index(ti, column).ok()?;
        let slot = catalog.tables[ti].indexed_column(ci)?;
        Some(catalog.tables[ti].indexed[slot].partial.coverage().clone())
    }

    /// Entries in the partial index of a column (inspection).
    pub fn partial_index_len(&self, table: &str, column: &str) -> Option<usize> {
        let catalog = self.catalog.read();
        let ti = catalog.table_index(table).ok()?;
        let ci = catalog.column_index(ti, column).ok()?;
        let slot = catalog.tables[ti].indexed_column(ci)?;
        Some(catalog.tables[ti].indexed[slot].partial.len())
    }

    /// The buffer id serving a column, if any (inspection).
    pub fn buffer_id(&self, table: &str, column: &str) -> Option<BufferId> {
        let catalog = self.catalog.read();
        let ti = catalog.table_index(table).ok()?;
        let ci = catalog.column_index(ti, column).ok()?;
        let slot = catalog.tables[ti].indexed_column(ci)?;
        catalog.tables[ti].indexed[slot].buffer
    }

    // ------------------------------------------- invariant shadow model

    /// Runs the full runtime shadow model (`invariant-checks` feature):
    /// recomputes every buffered column's `C[p]` ground truth from the
    /// heap, the coverage predicate and the buffer contents; checks every
    /// buffer's partition structure; and checks that the governor's byte
    /// charges equal the resident footprints on both sides of the budget.
    ///
    /// Every engine mutation path calls this automatically when the
    /// feature is on; it is public so tests can also probe at their own
    /// checkpoints. Costs a full scan of every buffered table.
    #[cfg(feature = "invariant-checks")]
    pub fn verify_invariants(&self) -> EngineResult<()> {
        let catalog = self.catalog.read();
        let shards = self.space.read_all();
        self.verify_with(&catalog, &shards)
    }

    /// The shadow model against already-held shard locks (so mutation paths
    /// can verify without re-acquiring). `shards` must hold every shard in
    /// ascending index order — exactly what `read_all`/`write_all` return.
    #[cfg(feature = "invariant-checks")]
    fn verify_with<S>(&self, catalog: &Catalog, shards: &[S]) -> EngineResult<()>
    where
        S: std::ops::Deref<Target = IndexBufferSpace>,
    {
        use aib_core::{verify_buffer, verify_shards, GroundTruth};
        let refs: Vec<&IndexBufferSpace> = shards.iter().map(|s| &**s).collect();
        let mut report = verify_shards(&refs);
        for t in &catalog.tables {
            for ic in &t.indexed {
                let Some(bid) = ic.buffer else { continue };
                let shard = refs[self.space.shard_of(bid)];
                let coverage = ic.partial.coverage();
                let covered = |v: &Value| coverage.covers(v);
                let truth = GroundTruth::compute(&t.heap, ic.column, &covered, shard.buffer(bid))?;
                report.merge(verify_buffer(
                    shard.buffer(bid),
                    shard.counters(bid),
                    &truth,
                ));
            }
        }
        self.pool.verify_budget().map_err(EngineError::Invariant)?;
        report.into_result().map_err(EngineError::Invariant)
    }

    /// Shadow-model checkpoint: diffs bookkeeping against ground truth
    /// after every mutation when `invariant-checks` is on; free otherwise.
    /// Takes the caller's held shard guards — never acquires.
    #[cfg(feature = "invariant-checks")]
    #[inline]
    fn verify_checkpoint<S>(&self, catalog: &Catalog, shards: &[S]) -> EngineResult<()>
    where
        S: std::ops::Deref<Target = IndexBufferSpace>,
    {
        self.verify_with(catalog, shards)
    }

    /// Shadow-model checkpoint (disabled build): compiles to nothing.
    #[cfg(not(feature = "invariant-checks"))]
    #[inline]
    fn verify_checkpoint<S>(&self, _catalog: &Catalog, _shards: &[S]) -> EngineResult<()>
    where
        S: std::ops::Deref<Target = IndexBufferSpace>,
    {
        Ok(())
    }

    /// Shadow-model checkpoint for paths that hold no shard lock: acquires
    /// every shard (read) only when `invariant-checks` is on — the fast
    /// path stays lock-free in normal builds.
    #[cfg(feature = "invariant-checks")]
    #[inline]
    fn verify_checkpoint_now(&self, catalog: &Catalog) -> EngineResult<()> {
        self.verify_with(catalog, &self.space.read_all())
    }

    /// Shadow-model checkpoint (disabled build): compiles to nothing.
    #[cfg(not(feature = "invariant-checks"))]
    #[inline]
    fn verify_checkpoint_now(&self, _catalog: &Catalog) -> EngineResult<()> {
        Ok(())
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field(
                "queries_executed",
                &self.queries_executed.load(Ordering::Relaxed),
            )
            .finish_non_exhaustive()
    }
}

impl Drop for Database {
    /// Stops the background checkpointer. Deliberately does **not**
    /// checkpoint: dropping without [`Database::close`] must behave like a
    /// crash for anything not yet durable (the `crash_mid_dml` tests
    /// depend on drop not quietly persisting a failed mutation).
    fn drop(&mut self) {
        if let Some(pipeline) = &self.durability {
            pipeline.shutdown();
        }
        if let Some(handle) = self.checkpointer.take() {
            let _ = handle.join();
        }
        // The adaptation applier only moves already-committed in-memory
        // state, so stopping it without a final drain is always safe: a
        // parked batch dies with the space (buffer contents are never
        // durable — recovery rebuilds them from the heap).
        if let Some(handle) = self.applier.take() {
            self.space.shutdown_applier();
            let _ = handle.join();
        }
    }
}

/// Body of the background adaptation applier ("aib-apply"), modeled on the
/// commit pipeline's checkpointer loop: a latch set by every queue push
/// (plus an unpark) triggers a drain; the park timeout is only a backstop
/// against a lost wakeup racing the swap. Each drain takes ordinary
/// write-side shard entries, so it obeys the shard lock hierarchy and the
/// epoch/`C[p]` apply-time validation like any other writer.
fn applier_loop(space: &ShardedSpace) {
    loop {
        if space.applier_should_exit() {
            return;
        }
        if space.take_apply_due() {
            space.drain_adaptation_queues();
            continue;
        }
        std::thread::park_timeout(std::time::Duration::from_millis(25));
    }
}

/// Checkpoint body, shared by [`Database::checkpoint`] and the background
/// checkpointer thread. The catalog write lock quiesces DML and queries, so
/// the flushed pages and the encoded catalog are one consistent cut; with
/// it held, staged frames can't appear mid-checkpoint, so the
/// [`CommitPipeline::flush`] drain is complete. Flush order is what makes
/// crashes safe: staged WAL frames land *first* (WAL before data), data
/// pages reach the heap file and fsync *second*, the log rotates *last* — a
/// crash between the steps leaves the old log, whose replay converges over
/// the partially-flushed heap (see `aib-storage::wal` "Replay
/// convergence").
fn checkpoint_core(
    pool: &BufferPool,
    catalog: &RwLock<Catalog>,
    pipeline: &CommitPipeline,
) -> EngineResult<()> {
    let catalog = catalog.write();
    pipeline.flush();
    pool.sync()?;
    let image = snapshot_image(&catalog);
    Ok(pipeline.rotate(&WalRecord::Snapshot(image.encode()))?)
}

/// Applies the online tuner's decision for an observed point query. Runs
/// with the catalog and every shard write guard held (only the exclusive
/// execution path tunes); mutates only the tuned buffer's shard.
fn apply_tuning(
    t: &mut Table,
    space: &ShardedSpace,
    shards: &mut [ShardWriteGuard<'_>],
    slot: usize,
    value: &Value,
    matched: &[Rid],
) -> EngineResult<()> {
    let Some(tuner) = t.indexed[slot].tuner.as_mut() else {
        return Ok(());
    };
    let decision = tuner.observe(value);
    if decision.is_noop() {
        return Ok(());
    }
    if let Some(v) = decision.add {
        // Newly covered tuples leave the "uncovered" bookkeeping: pages
        // buffered for this column drop the entries, unbuffered pages
        // decrement their counters (Table I's covering transition, via
        // the maintenance module — the only code allowed to mutate C).
        let pages: Vec<(Rid, u32)> = matched
            .iter()
            .map(|&rid| Ok((rid, t.ordinal(rid)?)))
            .collect::<Result<_, StorageError>>()?;
        let ic = &mut t.indexed[slot];
        if let Some(bid) = ic.buffer {
            shards[space.shard_of(bid)].with_buffer_mut(bid, |buffer, counters| {
                for &(rid, page) in &pages {
                    cover_tuple(buffer, counters, &v, rid, page)
                        .map_err(|e| EngineError::Invariant(e.to_string()))?;
                }
                Ok::<(), EngineError>(())
            })?;
        }
        ic.partial.adapt_add_value(v, matched);
    }
    for v in decision.evict {
        let ic = &mut t.indexed[slot];
        let rids = ic.partial.lookup(&v);
        ic.partial.adapt_remove_value(&v);
        // The evicted value's tuples become uncovered again.
        let buffer = ic.buffer;
        for rid in rids {
            let page = t.ordinal(rid)?;
            if let Some(bid) = buffer {
                shards[space.shard_of(bid)].with_buffer_mut(bid, |b, c| {
                    uncover_tuple(b, c, v.clone(), rid, page);
                });
            }
        }
    }
    if let Some(bid) = t.indexed[slot].buffer {
        shards[space.shard_of(bid)].sync_budget();
    }
    Ok(())
}

/// Routes one column's maintenance through Table I (buffered columns) or the
/// plain partial-index ops (unbuffered columns). A counter underflow inside
/// `maintain` means engine bookkeeping diverged from the heap; it surfaces as
/// [`EngineError::Invariant`].
fn apply_maintenance(
    space: &ShardedSpace,
    shards: &mut [ShardWriteGuard<'_>],
    ic: &mut IndexedColumn,
    old: Option<TupleRef>,
    new: Option<TupleRef>,
) -> EngineResult<()> {
    match ic.buffer {
        Some(bid) => {
            let shard = &mut shards[space.shard_of(bid)];
            let partial = &mut ic.partial;
            shard
                .with_buffer_mut(bid, |buffer, counters| {
                    maintain(partial, buffer, counters, old, new)
                })
                .map_err(|e| EngineError::Invariant(e.to_string()))?;
            // Maintenance mutates partitions behind the governor's back;
            // reconcile the byte charge at this barrier.
            shard.sync_budget();
        }
        None => {
            // Only the partial-index row of Table I applies.
            let old_cov = old.as_ref().filter(|t| ic.partial.covers(&t.value));
            let new_cov = new.as_ref().filter(|t| ic.partial.covers(&t.value));
            match (old_cov, new_cov) {
                (Some(o), Some(n)) => ic.partial.update(&o.value, o.rid, n.value.clone(), n.rid),
                (Some(o), None) => {
                    ic.partial.remove(&o.value, o.rid);
                }
                (None, Some(n)) => {
                    ic.partial.add(n.value.clone(), n.rid);
                }
                (None, None) => {}
            }
        }
    }
    Ok(())
}

/// Encodes the catalog as a checkpoint snapshot image: names, schemas,
/// heap page lists (ordinal order), and the DDL-time index definitions.
/// Deliberately **not** included: tuples (the heap file has them), partial
/// index entries, tuner state, buffer contents, `C[p]` counters.
fn snapshot_image(catalog: &Catalog) -> SnapshotImage {
    SnapshotImage {
        tables: catalog
            .tables
            .iter()
            .map(|t| TableImage {
                name: t.name.clone(),
                schema: t.schema.clone(),
                pages: (0..t.heap.num_pages())
                    .filter_map(|o| t.heap.page_id_of(o))
                    .collect(),
                indexes: t.indexed.iter().map(|ic| ic.logged.clone()).collect(),
            })
            .collect(),
    }
}

/// The replayed-metadata image of table ordinal `table`, or a corruption
/// error — a DDL record naming a table the log never created means the log
/// and snapshot disagree.
fn table_image_mut(images: &mut [TableImage], table: u32) -> EngineResult<&mut TableImage> {
    images
        .get_mut(table as usize)
        .ok_or_else(|| EngineError::Internal(format!("wal ddl names unknown table {table}")))
}

/// Clones one column out of a tuple the engine already validated; arity
/// mismatch at this point is an engine bug, not a caller mistake.
fn column_value(tuple: &Tuple, column: usize) -> EngineResult<Value> {
    tuple
        .get(column)
        .cloned()
        .ok_or_else(|| EngineError::Internal(format!("stored tuple missing column {column}")))
}

/// Decodes the scanned column value and page ordinal of one heap tuple for
/// the index-build scans (`install_partial_index`, `redefine_coverage`).
fn decode_site(
    heap: &HeapFile,
    rid: Rid,
    bytes: &[u8],
    column: usize,
) -> EngineResult<(Value, u32)> {
    let value = Tuple::read_column(bytes, column)?;
    let ord = heap
        .ordinal_of(rid.page)
        .ok_or_else(|| EngineError::Internal(format!("scanned page {} unowned", rid.page)))?;
    Ok((value, ord))
}
