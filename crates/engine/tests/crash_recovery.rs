//! Crash-injection tests for the durable engine: kill the "process" (drop
//! the [`Database`] without closing) mid-DML, mid-adaptation and
//! mid-checkpoint, reopen, and demand the paper's recovery contract:
//!
//! * the logical heap comes back **exactly** — same rids, same tuples —
//!   for every operation that completed (its WAL record was fsynced);
//! * `C[p]` counters are rebuilt from a heap rescan and the Index Buffer
//!   Space starts **empty** with fresh epochs;
//! * buffer growth and tuner adaptation write **zero** WAL records, and a
//!   crash simply reverts coverage to its DDL-time definition.

use aib_core::BufferConfig;
use aib_engine::{AccessPath, Database, EngineConfig, Query, TunerConfig};
use aib_index::{Coverage, IndexBackend};
use aib_storage::{Column, Rid, Schema, Tuple, Value};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

/// A unique scratch directory per test, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let mut p = std::env::temp_dir();
        p.push(format!(
            "aib-crash-{}-{}-{tag}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&p);
        TempDir(p)
    }

    fn path(&self) -> &PathBuf {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn config() -> EngineConfig {
    EngineConfig {
        pool_frames: 64,
        scan_threads: 1,
        ..Default::default()
    }
}

fn tuple(k: i64) -> Tuple {
    Tuple::new(vec![Value::Int(k), Value::from("x".repeat(120))])
}

fn schema() -> Schema {
    Schema::new(vec![Column::int("k"), Column::str("pad")])
}

/// Sorted `(rid, tuple)` image of a table — the equality we demand across
/// a crash.
fn image(db: &Database, table: &str) -> Vec<(Rid, Tuple)> {
    let mut rows = db.table(table).unwrap().scan_all().unwrap();
    rows.sort_by_key(|(rid, _)| *rid);
    rows
}

#[test]
fn clean_reopen_restores_exact_heap_and_empty_buffer() {
    let dir = TempDir::new("clean");
    let before = {
        let db = Database::open(dir.path(), config()).unwrap();
        db.create_table("t", schema()).unwrap();
        for i in 0..200 {
            db.insert("t", &tuple(i)).unwrap();
        }
        db.create_partial_index(
            "t",
            "k",
            Coverage::IntRange { lo: 0, hi: 49 },
            IndexBackend::BTree,
            Some(BufferConfig::default()),
        )
        .unwrap();
        // Grow the buffer: an uncovered query indexes the scanned pages...
        let m = db.execute(&Query::on("t", "k").eq(150i64)).unwrap().metrics;
        assert!(m.scan.unwrap().pages_indexed > 0);
        // ...so a repeat is pure page-skipping.
        let m = db.execute(&Query::on("t", "k").eq(151i64)).unwrap().metrics;
        assert_eq!(m.scan.unwrap().pages_read, 0);
        let before = image(&db, "t");
        db.close().unwrap();
        before
    };

    let db = Database::open(dir.path(), config()).unwrap();
    assert!(db.is_durable());
    assert_eq!(image(&db, "t"), before, "heap must come back bit-for-bit");
    // The Index Buffer is rebuilt *empty* — never persisted.
    let bid = db.buffer_id("t", "k").unwrap();
    let snapshot = db.space_snapshot();
    assert_eq!(snapshot.buffer(bid).unwrap().entries(), 0);
    // But C[p] was rebuilt from the rescan: an uncovered query re-indexes
    // (reads pages, counters agree with the heap), then skipping resumes.
    let m = db.execute(&Query::on("t", "k").eq(150i64)).unwrap().metrics;
    assert!(m.scan.unwrap().pages_read > 0, "cold buffer re-reads");
    let (r, m) = {
        let o = db.execute(&Query::on("t", "k").eq(151i64)).unwrap();
        (o.result, o.metrics)
    };
    assert_eq!(m.scan.unwrap().pages_read, 0, "warm again after one scan");
    assert_eq!(r.count(), 1);
    // Covered values still hit the partial index rebuilt by the rescan.
    let r = db.execute(&Query::on("t", "k").eq(7i64)).unwrap().result;
    assert_eq!((r.path, r.count()), (AccessPath::PartialIndex, 1));
}

#[test]
fn crash_mid_dml_keeps_exactly_the_logged_prefix() {
    let dir = TempDir::new("middml");
    let before = {
        let db = Database::open(dir.path(), config()).unwrap();
        db.create_table("t", schema()).unwrap();
        for i in 0..50 {
            db.insert("t", &tuple(i)).unwrap();
        }
        // Updates and deletes after the last checkpoint live only in the WAL.
        let rows = image(&db, "t");
        db.update("t", rows[3].0, &tuple(1003)).unwrap();
        db.delete("t", rows[7].0).unwrap();
        // The 51st insert crashes mid-append: a torn frame hits the log and
        // the operation reports failure.
        db.wal_fail_after(0);
        assert!(db.insert("t", &tuple(999)).is_err());
        image(&db, "t")
        // ... and the "process" dies here: no close, no checkpoint.
    };
    let expected: Vec<(Rid, Tuple)> = before
        .into_iter()
        .filter(|(_, t)| t.get(0) != Some(&Value::Int(999)))
        .collect();

    let db = Database::open(dir.path(), config()).unwrap();
    let after = image(&db, "t");
    assert_eq!(after, expected, "logged prefix survives, torn insert gone");
    assert_eq!(db.table("t").unwrap().live_tuples(), 49);
}

#[test]
fn buffer_growth_and_adaptation_write_zero_wal_records() {
    let dir = TempDir::new("midadapt");
    let ddl_coverage = Coverage::Set([Value::Int(1), Value::Int(2)].into_iter().collect());
    {
        let db = Database::open(dir.path(), config()).unwrap();
        db.create_table("t", schema()).unwrap();
        for i in 0..200 {
            db.insert("t", &tuple(i % 40)).unwrap();
        }
        db.create_partial_index(
            "t",
            "k",
            ddl_coverage.clone(),
            IndexBackend::BTree,
            Some(BufferConfig::default()),
        )
        .unwrap();
        db.attach_tuner(
            "t",
            "k",
            TunerConfig {
                window: 10,
                threshold: 3,
                capacity: 4,
            },
        )
        .unwrap();

        let flat = db.wal_records_written();
        // Hammer one uncovered value: the indexing scan grows the buffer,
        // then the tuner crosses its threshold and adapts coverage.
        for _ in 0..12 {
            db.execute(&Query::on("t", "k").eq(30i64)).unwrap();
        }
        let adapted = db.coverage("t", "k").unwrap();
        assert!(
            adapted.covers(&Value::Int(30)),
            "tuner should have adapted coverage mid-run"
        );
        assert_ne!(adapted, ddl_coverage);
        assert_eq!(
            db.wal_records_written(),
            flat,
            "buffer growth and adaptation must produce no WAL traffic"
        );
        // Crash without checkpointing.
    }

    let db = Database::open(dir.path(), config()).unwrap();
    assert_eq!(
        db.coverage("t", "k").unwrap(),
        ddl_coverage,
        "recovery reverts to the DDL-time coverage"
    );
    let bid = db.buffer_id("t", "k").unwrap();
    assert_eq!(db.space_snapshot().buffer(bid).unwrap().entries(), 0);
    assert_eq!(db.table("t").unwrap().live_tuples(), 200);
}

#[test]
fn crash_mid_checkpoint_converges_via_old_log() {
    let dir = TempDir::new("midckpt");
    let before = {
        let db = Database::open(dir.path(), config()).unwrap();
        db.create_table("t", schema()).unwrap();
        for i in 0..80 {
            db.insert("t", &tuple(i)).unwrap();
        }
        db.checkpoint().unwrap();
        // Post-checkpoint churn: grow some tuples (page moves), shrink
        // others, delete a few — all of it only in the WAL and dirty pages.
        let rows = image(&db, "t");
        for (i, (rid, _)) in rows.iter().enumerate().take(40) {
            if i % 7 == 0 {
                db.delete("t", rid.to_owned()).unwrap();
            } else {
                db.update("t", *rid, &tuple(1000 + i as i64)).unwrap();
            }
        }
        // The next checkpoint flushes only half its dirty pages, then dies:
        // the heap file is left *partially* newer than the surviving log's
        // snapshot.
        db.fail_next_heap_sync();
        assert!(db.checkpoint().is_err());
        image(&db, "t")
    };

    let db = Database::open(dir.path(), config()).unwrap();
    assert_eq!(
        image(&db, "t"),
        before,
        "replay must converge over a partially flushed checkpoint"
    );
}

#[test]
fn ddl_between_checkpoints_replays() {
    let dir = TempDir::new("ddl");
    {
        let db = Database::open(dir.path(), config()).unwrap();
        db.create_table("a", schema()).unwrap();
        db.checkpoint().unwrap();
        // Everything after this checkpoint reaches recovery as raw records:
        // a second table, an index, a redefinition, a dropped index.
        db.create_table("b", schema()).unwrap();
        for i in 0..30 {
            db.insert("a", &tuple(i)).unwrap();
            db.insert("b", &tuple(i)).unwrap();
        }
        db.create_partial_index(
            "a",
            "k",
            Coverage::IntRange { lo: 0, hi: 9 },
            IndexBackend::BTree,
            Some(BufferConfig::default()),
        )
        .unwrap();
        db.create_partial_index("b", "k", Coverage::All, IndexBackend::Hash, None)
            .unwrap();
        db.redefine_coverage("a", "k", Coverage::IntRange { lo: 0, hi: 19 })
            .unwrap();
        db.drop_partial_index("b", "k").unwrap();
        // Crash.
    }

    let db = Database::open(dir.path(), config()).unwrap();
    assert_eq!(
        db.coverage("a", "k"),
        Some(Coverage::IntRange { lo: 0, hi: 19 }),
        "redefined coverage is DDL and must survive"
    );
    assert_eq!(db.coverage("b", "k"), None, "dropped index stays dropped");
    assert_eq!(db.table("a").unwrap().live_tuples(), 30);
    assert_eq!(db.table("b").unwrap().live_tuples(), 30);
    let r = db.execute(&Query::on("a", "k").eq(15i64)).unwrap().result;
    assert_eq!((r.path, r.count()), (AccessPath::PartialIndex, 1));
    let r = db.execute(&Query::on("b", "k").eq(15i64)).unwrap().result;
    assert_eq!((r.path, r.count()), (AccessPath::PlainScan, 1));
}

#[test]
fn paged_partial_index_rebuilds_on_reopen() {
    let dir = TempDir::new("paged");
    {
        let db = Database::open(dir.path(), config()).unwrap();
        db.create_table("t", schema()).unwrap();
        for i in 0..120 {
            db.insert("t", &tuple(i)).unwrap();
        }
        db.create_paged_partial_index(
            "t",
            "k",
            Coverage::IntRange { lo: 0, hi: 59 },
            Some(BufferConfig::default()),
        )
        .unwrap();
        db.close().unwrap();
    }

    let db = Database::open(dir.path(), config()).unwrap();
    // Heap pages and (leaked, reallocated) index pages interleave in the
    // file; the rescan must rebuild the paged index around the holes.
    let r = db.execute(&Query::on("t", "k").eq(10i64)).unwrap().result;
    assert_eq!((r.path, r.count()), (AccessPath::PartialIndex, 1));
    let r = db.execute(&Query::on("t", "k").eq(100i64)).unwrap().result;
    assert_eq!((r.path, r.count()), (AccessPath::BufferedScan, 1));
    assert_eq!(db.table("t").unwrap().live_tuples(), 120);
}

#[test]
fn checkpoint_compacts_the_log() {
    let dir = TempDir::new("compact");
    let db = Database::open(dir.path(), config()).unwrap();
    db.create_table("t", schema()).unwrap();
    for i in 0..20 {
        db.insert("t", &tuple(i)).unwrap();
    }
    assert_eq!(db.wal_records_written(), 22, "snapshot + create + 20 DML");
    db.checkpoint().unwrap();
    assert_eq!(db.wal_records_written(), 1, "rotation leaves one snapshot");
    db.insert("t", &tuple(99)).unwrap();
    assert_eq!(db.wal_records_written(), 2);
}

#[test]
fn wal_records_auto_checkpoint_at_interval() {
    let dir = TempDir::new("auto");
    let db = Database::open(
        dir.path(),
        EngineConfig {
            wal_checkpoint_interval: 16,
            ..config()
        },
    )
    .unwrap();
    db.create_table("t", schema()).unwrap();
    for i in 0..100 {
        db.insert("t", &tuple(i)).unwrap();
    }
    // Periodic rotation now runs on the background checkpointer thread
    // (only *flagged* on the commit path), so give it a moment to land.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while db.wal_records_written() > 17 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(
        db.wal_records_written() <= 17,
        "periodic rotation must bound the log, saw {}",
        db.wal_records_written()
    );
    assert_eq!(db.table("t").unwrap().live_tuples(), 100);
}

// ------------------------------------------------------ group commit

/// Group-commit window used by the suite: long enough that concurrent
/// writers actually share fsyncs, short enough to keep the tests fast.
fn grouped() -> EngineConfig {
    EngineConfig {
        group_commit_wait_us: 200,
        ..config()
    }
}

/// The core ack guarantee under concurrency: every DML call that
/// *returned `Ok`* before the crash must survive it, no matter how the
/// group-commit leader batched the frames. 8 writers race on disjoint key
/// ranges, the "process" dies without closing, and recovery must hold
/// every acked key.
#[test]
fn no_acked_commit_is_lost_across_a_crash() {
    let dir = TempDir::new("acked");
    let acked: Vec<i64> = {
        let db = Database::open(dir.path(), grouped()).unwrap().into_shared();
        db.create_table("t", schema()).unwrap();
        let mut acked = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|w| {
                    let db = db.clone();
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        for i in 0..25i64 {
                            let k = w as i64 * 1000 + i;
                            if db.insert("t", &tuple(k)).is_ok() {
                                // Acked: the covering fsync landed.
                                mine.push(k);
                            }
                        }
                        mine
                    })
                })
                .collect();
            for h in handles {
                acked.extend(h.join().unwrap());
            }
        });
        assert!(
            db.wal_fsyncs() < db.wal_records_written(),
            "8 racing writers should share at least one covering fsync \
             ({} records, {} fsyncs)",
            db.wal_records_written(),
            db.wal_fsyncs()
        );
        acked
        // Crash: drop without close.
    };

    let db = Database::open(dir.path(), grouped()).unwrap();
    let keys: std::collections::BTreeSet<i64> = image(&db, "t")
        .into_iter()
        .map(|(_, t)| match t.get(0) {
            Some(Value::Int(k)) => *k,
            other => panic!("unexpected key {other:?}"),
        })
        .collect();
    for k in &acked {
        assert!(keys.contains(k), "acked insert of key {k} lost by crash");
    }
    assert_eq!(keys.len(), acked.len(), "recovery invented rows");
}

/// A torn batch tail behaves like the old torn single frame: replay stops
/// cleanly at the tear, the batch's durable prefix survives, and the ops
/// behind the tear report failure (and are absent after recovery).
#[test]
fn torn_batch_tail_stops_replay_at_the_tear() {
    let dir = TempDir::new("tornbatch");
    {
        let db = Database::open(dir.path(), config()).unwrap();
        db.create_table("t", schema()).unwrap();
        for i in 0..10 {
            db.insert("t", &tuple(i)).unwrap();
        }
        // One batch of 6 inserts; the 4th frame tears mid-write.
        db.wal_fail_after(3);
        let ops: Vec<aib_engine::BatchOp> = (100..106i64)
            .map(|k| aib_engine::BatchOp::Insert {
                table: "t".into(),
                tuple: tuple(k),
            })
            .collect();
        assert!(db.execute_batch(&ops).is_err());
        // The log is poisoned past the tear: further commits must refuse
        // rather than land unreachable frames behind the torn one...
        assert!(db.insert("t", &tuple(999)).is_err());
        // ...until a checkpoint rotates in a fresh log.
        db.checkpoint().unwrap();
        db.insert("t", &tuple(500)).unwrap();
        db.close().unwrap();
    }

    let db = Database::open(dir.path(), config()).unwrap();
    let keys: std::collections::BTreeSet<i64> = image(&db, "t")
        .into_iter()
        .map(|(_, t)| match t.get(0) {
            Some(Value::Int(k)) => *k,
            other => panic!("unexpected key {other:?}"),
        })
        .collect();
    for k in 0..10 {
        assert!(keys.contains(&k), "pre-batch key {k} lost");
    }
    // The checkpoint that cleared the poison persisted every *applied*
    // mutation via its snapshot — the six batch keys and even the
    // poison-refused 999 — exactly as a checkpoint after a failed single
    // append always has (the snapshot supersedes the torn log).
    for k in 100..106 {
        assert!(keys.contains(&k), "checkpointed batch key {k} lost");
    }
    assert!(keys.contains(&999), "checkpointed (applied) insert lost");
    assert!(keys.contains(&500), "post-rotation insert lost");
}

/// The torn tail without the rescuing checkpoint: crash right after the
/// failed batch. Replay stops at the tear, keeping exactly the batch's
/// durable prefix.
#[test]
fn torn_batch_tail_without_checkpoint_keeps_durable_prefix() {
    let dir = TempDir::new("tornprefix");
    {
        let db = Database::open(dir.path(), config()).unwrap();
        db.create_table("t", schema()).unwrap();
        for i in 0..10 {
            db.insert("t", &tuple(i)).unwrap();
        }
        db.wal_fail_after(3);
        let ops: Vec<aib_engine::BatchOp> = (100..106i64)
            .map(|k| aib_engine::BatchOp::Insert {
                table: "t".into(),
                tuple: tuple(k),
            })
            .collect();
        assert!(db.execute_batch(&ops).is_err());
        // Crash: no checkpoint, no close.
    }

    let db = Database::open(dir.path(), config()).unwrap();
    let keys: std::collections::BTreeSet<i64> = image(&db, "t")
        .into_iter()
        .map(|(_, t)| match t.get(0) {
            Some(Value::Int(k)) => *k,
            other => panic!("unexpected key {other:?}"),
        })
        .collect();
    for k in 0..10 {
        assert!(keys.contains(&k), "pre-batch key {k} lost");
    }
    for k in 100..103 {
        assert!(keys.contains(&k), "durable batch prefix key {k} lost");
    }
    for k in 103..106 {
        assert!(!keys.contains(&k), "key {k} behind the tear resurrected");
    }
}

/// A group-committed log must replay to the same state as a per-record
/// log: the batch framing is byte-identical, so the same op sequence
/// yields the same WAL bytes and the same recovered image.
#[test]
fn group_committed_log_replays_identically_to_per_record_log() {
    let per_record = TempDir::new("perrecord");
    let batched = TempDir::new("batched");

    let run = |dir: &TempDir, batch: bool| {
        let cfg = if batch { grouped() } else { config() };
        let db = Database::open(dir.path(), cfg).unwrap();
        db.create_table("t", schema()).unwrap();
        if batch {
            let ops: Vec<aib_engine::BatchOp> = (0..40i64)
                .map(|k| aib_engine::BatchOp::Insert {
                    table: "t".into(),
                    tuple: tuple(k),
                })
                .collect();
            db.execute_batch(&ops).unwrap();
        } else {
            for k in 0..40i64 {
                db.insert("t", &tuple(k)).unwrap();
            }
        }
        let rows = image(&db, "t");
        db.update("t", rows[3].0, &tuple(1003)).unwrap();
        db.delete("t", rows[7].0).unwrap();
        // Crash without checkpointing, so reopen replays the raw log.
    };
    run(&per_record, false);
    run(&batched, true);

    assert_eq!(
        std::fs::read(per_record.path().join("wal.log")).unwrap(),
        std::fs::read(batched.path().join("wal.log")).unwrap(),
        "batch framing must be byte-identical to per-record framing"
    );

    let a = Database::open(per_record.path(), config()).unwrap();
    let b = Database::open(batched.path(), config()).unwrap();
    assert_eq!(image(&a, "t"), image(&b, "t"));
}

/// `execute_batch` costs one covering fsync for the whole batch, and its
/// per-op results line up with the ops.
#[test]
fn execute_batch_amortizes_to_one_fsync() {
    let dir = TempDir::new("batchfsync");
    let db = Database::open(dir.path(), config()).unwrap();
    db.create_table("t", schema()).unwrap();
    let ops: Vec<aib_engine::BatchOp> = (0..32i64)
        .map(|k| aib_engine::BatchOp::Insert {
            table: "t".into(),
            tuple: tuple(k),
        })
        .collect();
    let before = db.wal_fsyncs();
    let rids = db.execute_batch(&ops).unwrap();
    assert_eq!(db.wal_fsyncs() - before, 1, "one covering fsync per batch");
    assert_eq!(rids.len(), 32);
    assert!(rids.iter().all(|r| r.is_some()));

    // Mixed batch: update rows 0..4, delete rows 4..8 — deletes yield None.
    let rows = image(&db, "t");
    let mut ops: Vec<aib_engine::BatchOp> = rows[..4]
        .iter()
        .map(|(rid, _)| aib_engine::BatchOp::Update {
            table: "t".into(),
            rid: *rid,
            tuple: tuple(9000),
        })
        .collect();
    ops.extend(
        rows[4..8]
            .iter()
            .map(|(rid, _)| aib_engine::BatchOp::Delete {
                table: "t".into(),
                rid: *rid,
            }),
    );
    let results = db.execute_batch(&ops).unwrap();
    assert!(results[..4].iter().all(|r| r.is_some()));
    assert!(results[4..].iter().all(|r| r.is_none()));
    assert_eq!(db.table("t").unwrap().live_tuples(), 28);
    db.close().unwrap();
}

/// 8 racing writers under the shadow model: after a crash mid-race, the
/// recovered bookkeeping must match a `GroundTruth` recomputation (heap
/// rescan + coverage), and the heap holds exactly the acked rows.
#[cfg(feature = "invariant-checks")]
#[test]
fn racing_writers_recover_to_ground_truth() {
    let dir = TempDir::new("racetruth");
    let acked: Vec<i64> = {
        let db = Database::open(dir.path(), grouped()).unwrap().into_shared();
        db.create_table("t", schema()).unwrap();
        db.create_partial_index(
            "t",
            "k",
            Coverage::IntRange { lo: 0, hi: 499 },
            IndexBackend::BTree,
            Some(BufferConfig::default()),
        )
        .unwrap();
        let mut acked = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|w| {
                    let db = db.clone();
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        for i in 0..20i64 {
                            let k = w as i64 * 1000 + i;
                            if db.insert("t", &tuple(k)).is_ok() {
                                mine.push(k);
                            }
                        }
                        mine
                    })
                })
                .collect();
            for h in handles {
                acked.extend(h.join().unwrap());
            }
        });
        acked
        // Crash.
    };

    let db = Database::open(dir.path(), grouped()).unwrap();
    db.verify_invariants().unwrap();
    db.check_space_invariants();
    let keys: std::collections::BTreeSet<i64> = image(&db, "t")
        .into_iter()
        .map(|(_, t)| match t.get(0) {
            Some(Value::Int(k)) => *k,
            other => panic!("unexpected key {other:?}"),
        })
        .collect();
    assert_eq!(keys.len(), acked.len());
    for k in &acked {
        assert!(keys.contains(k), "acked key {k} lost");
    }
    // Post-recovery traffic keeps the model happy too.
    for q in 0..10 {
        db.execute(&Query::on("t", "k").eq(q as i64)).unwrap();
    }
    db.verify_invariants().unwrap();
}

/// The full shadow-model diff after recovery: `GroundTruth`-recomputed
/// `C[p]` (heap rescan + coverage + buffer contents) must equal the
/// recovered bookkeeping, for every buffered column, plus budget and
/// partition-structure checks. This is the ISSUE's "rebuilds `C[p]` to
/// match a fresh rescan" acceptance check, end to end.
#[cfg(feature = "invariant-checks")]
#[test]
fn recovered_counters_match_ground_truth() {
    let dir = TempDir::new("truth");
    {
        let db = Database::open(dir.path(), config()).unwrap();
        db.create_table("t", schema()).unwrap();
        for i in 0..300 {
            db.insert("t", &tuple(i % 60)).unwrap();
        }
        db.create_partial_index(
            "t",
            "k",
            Coverage::IntRange { lo: 0, hi: 29 },
            IndexBackend::BTree,
            Some(BufferConfig::default()),
        )
        .unwrap();
        for q in 30..45 {
            db.execute(&Query::on("t", "k").eq(q as i64)).unwrap();
        }
        let rows = image(&db, "t");
        db.delete("t", rows[5].0).unwrap();
        db.update("t", rows[11].0, &tuple(7)).unwrap();
        // Crash without checkpoint.
    }
    let db = Database::open(dir.path(), config()).unwrap();
    db.verify_invariants().unwrap();
    db.check_space_invariants();
    // And again after post-recovery traffic.
    for q in 30..40 {
        db.execute(&Query::on("t", "k").eq(q as i64)).unwrap();
    }
    db.verify_invariants().unwrap();
}
