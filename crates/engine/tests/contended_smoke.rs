//! Contended smoke: eight client threads hammer the snapshot-planned read
//! path CPU-bound (`io_wait = false`, zero-cost disk, resident pool — no
//! stalls to hide serialization behind) on a partially skippable fixture,
//! in both `Inline` and `Queued` apply modes. Every thread checks each
//! result against the arithmetic ground truth while racing the others'
//! adaptation; afterwards a quiescent drain must leave the space
//! structurally sound (and, under `--features invariant-checks`, exact
//! against the heap-recomputed shadow model).
//!
//! CI runs this under `invariant-checks` in the concurrency job — it is
//! the correctness twin of `micro_concurrency`'s `contended` bench
//! section.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use aib_core::{BufferConfig, SpaceConfig};
use aib_engine::{AdaptationApplyMode, ClientHandle, Database, EngineConfig, Query};
use aib_index::{Coverage, IndexBackend};
use aib_storage::{Column, CostModel, Schema, Tuple, Value};

const ROWS: i64 = 5_000;
const COVERED_HI: i64 = ROWS / 10; // 90% of the domain is uncovered.
const THREADS: usize = 8;

fn build(mode: AdaptationApplyMode) -> Arc<Database> {
    let db = Database::new(EngineConfig {
        pool_frames: 1024,
        cost_model: CostModel::free(),
        io_wait: false,
        adaptation_apply_mode: mode,
        space: SpaceConfig {
            max_bytes: None,
            i_max: 1_000_000,
            seed: 3,
            shards: 4,
        },
        ..Default::default()
    });
    db.create_table("t", Schema::new(vec![Column::int("k"), Column::str("pad")]))
        .unwrap();
    for i in 1..=ROWS {
        db.insert(
            "t",
            &Tuple::new(vec![Value::Int(i), Value::from("x".repeat(32))]),
        )
        .unwrap();
    }
    db.create_partial_index(
        "t",
        "k",
        Coverage::IntRange {
            lo: 1,
            hi: COVERED_HI,
        },
        IndexBackend::BTree,
        Some(BufferConfig::default()),
    )
    .unwrap();
    db.into_shared()
}

/// Eight threads race point and range probes for `dur`, each validating
/// every result against the closed-form expected count.
fn hammer(db: &Arc<Database>, dur: Duration) {
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let client = ClientHandle::new(Arc::clone(db));
            let stop = &stop;
            s.spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Walk the whole domain, staggered per thread, mixing
                    // covered, uncovered, and straddling probes.
                    let k = 1 + ((i * 37 + t as u64 * 131) % ROWS as u64) as i64;
                    let got = client
                        .execute(&Query::point("t", "k", k))
                        .unwrap()
                        .result
                        .count();
                    assert_eq!(got, 1, "point probe k={k} under contention");
                    if i.is_multiple_of(7) {
                        let hi = (k + 50).min(ROWS);
                        let got = client
                            .execute(&Query::range("t", "k", k, hi))
                            .unwrap()
                            .result
                            .count();
                        assert_eq!(
                            got,
                            (hi - k + 1) as usize,
                            "range probe [{k}, {hi}] under contention"
                        );
                    }
                    i += 1;
                }
            });
        }
        std::thread::sleep(dur);
        stop.store(true, Ordering::Relaxed);
    });
}

fn run_mode(mode: AdaptationApplyMode) {
    let db = build(mode);
    hammer(&db, Duration::from_millis(200));
    db.drain_adaptations();
    let stats = db.adaptation_stats();
    assert_eq!(stats.depth, 0, "drain left batches parked");
    assert_eq!(
        stats.applied + stats.dropped + stats.rejected,
        stats.enqueued,
        "unaccounted batches"
    );
    db.check_space_invariants();
    #[cfg(feature = "invariant-checks")]
    db.verify_invariants().unwrap();
}

#[test]
fn eight_threads_inline_mode_stays_exact() {
    run_mode(AdaptationApplyMode::Inline);
}

#[test]
fn eight_threads_queued_mode_converges() {
    run_mode(AdaptationApplyMode::Queued);
}

#[test]
fn eight_threads_locked_baseline_stays_exact() {
    run_mode(AdaptationApplyMode::Locked);
}
