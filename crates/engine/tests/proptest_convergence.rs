//! Property test of the "convergent under quiescence" contract
//! (DESIGN §6): whatever the workload, coverage fraction, shard count and
//! space budget, the snapshot-planned read path — in every
//! `adaptation_apply_mode` — must
//!
//! 1. return exactly the result set the locked sequential executor
//!    returns, query by query, regardless of when queued batches are
//!    applied; and
//! 2. after a quiescent drain (`drain_adaptations` with no query in
//!    flight), leave the Index Buffer contents, every per-page `C[p]`,
//!    and the governor's `IndexSpace` charge identical to the sequential
//!    executor's — when drains happen at the same points the sequential
//!    executor applies (after every query).
//!
//! A lazily drained queued run (batches parked across several queries) is
//! additionally held to the shadow-model invariants: after the final
//! drain, `C[p]` must match the heap ground truth and the governor charge
//! the resident footprint — the state may legitimately lag the sequential
//! executor's *before* quiescence, but it must never be *wrong*.
//!
//! Extends the `proptest_space.rs` pattern (random setup → invariant
//! assertions vs first-principles recomputation) one layer up, to the
//! engine's executor.

use aib_core::{BufferConfig, SpaceConfig};
use aib_engine::{AdaptationApplyMode, Database, EngineConfig, Query};
use aib_index::{Coverage, IndexBackend};
use aib_storage::{Column, CostModel, Schema, Tuple, Value, DEFAULT_ENTRY_FOOTPRINT};
use proptest::prelude::*;

/// One generated workload: a keyed table, a partial index covering a
/// bottom fraction of the domain, and a probe sequence mixing point and
/// range queries over covered and uncovered keys.
#[derive(Debug, Clone)]
struct Workload {
    rows: i64,
    covered_pct: i64,
    shards: usize,
    /// `None` = unlimited space; `Some(n)` = an entry cap (0 pins the
    /// buffer empty, a mid-size cap forces the planner's fail-closed
    /// fallback and displacement decisions).
    budget_entries: Option<usize>,
    probes: Vec<Probe>,
    /// The lazy queued run drains only every `drain_every` queries.
    drain_every: usize,
}

#[derive(Debug, Clone, Copy)]
enum Probe {
    Point(i64),
    Between(i64, i64),
}

fn workload_strategy() -> impl Strategy<Value = Workload> {
    let probe = prop_oneof![
        (1i64..400).prop_map(Probe::Point),
        (1i64..400, 1i64..80).prop_map(|(lo, w)| Probe::Between(lo, lo + w)),
    ];
    (
        150i64..400,
        0i64..=90,
        prop_oneof![Just(1usize), Just(2), Just(4)],
        prop_oneof![
            Just(None),
            Just(Some(0usize)),
            (20usize..200).prop_map(Some),
        ],
        prop::collection::vec(probe, 4..12),
        1usize..4,
    )
        .prop_map(
            |(rows, covered_pct, shards, budget_entries, probes, drain_every)| Workload {
                rows,
                covered_pct,
                shards,
                budget_entries,
                probes,
                drain_every,
            },
        )
}

/// Observable end state after a quiescent drain: per-buffer entry counts,
/// every per-page `C[p]`, and the governor's index-space byte charge.
#[derive(Debug, PartialEq, Eq)]
struct EndState {
    entries: usize,
    counters: Vec<u32>,
    index_bytes: usize,
}

/// Runs the workload in one mode, draining every `drain_every` queries
/// and once more at the end, and returns (per-query result counts, end
/// state, adaptation stats).
fn run(
    w: &Workload,
    mode: AdaptationApplyMode,
    drain_every: usize,
) -> (Vec<usize>, EndState, aib_core::AdaptationStats) {
    let db = Database::new(EngineConfig {
        pool_frames: 256,
        cost_model: CostModel::free(),
        scan_threads: 1,
        adaptation_apply_mode: mode,
        space: SpaceConfig {
            max_bytes: w.budget_entries.map(|n| n * DEFAULT_ENTRY_FOOTPRINT),
            i_max: 1_000,
            seed: 11,
            shards: w.shards,
        },
        ..Default::default()
    });
    db.create_table("t", Schema::new(vec![Column::int("k"), Column::str("pad")]))
        .unwrap();
    for i in 1..=w.rows {
        db.insert(
            "t",
            &Tuple::new(vec![Value::Int(i), Value::from("p".repeat(48))]),
        )
        .unwrap();
    }
    let hi = w.covered_pct * w.rows / 100;
    db.create_partial_index(
        "t",
        "k",
        Coverage::IntRange { lo: 1, hi },
        IndexBackend::BTree,
        Some(BufferConfig::default()),
    )
    .unwrap();

    let domain = |v: i64| 1 + (v - 1) % w.rows;
    let mut counts = Vec::with_capacity(w.probes.len());
    for (i, probe) in w.probes.iter().enumerate() {
        let q = match *probe {
            Probe::Point(v) => Query::point("t", "k", domain(v)),
            Probe::Between(lo, hi) => {
                let (a, b) = (domain(lo), domain(hi));
                Query::range("t", "k", a.min(b), a.max(b))
            }
        };
        counts.push(db.execute(&q).unwrap().into_parts().0.count());
        if (i + 1) % drain_every == 0 {
            db.drain_adaptations();
        }
    }
    db.drain_adaptations();

    db.check_space_invariants();
    #[cfg(feature = "invariant-checks")]
    db.verify_invariants().unwrap();

    let shard = db.space_shard(0);
    let end = EndState {
        entries: shard.buffer(0).num_entries(),
        counters: (0..shard.counters(0).num_pages())
            .map(|p| shard.counters(0).get(p))
            .collect(),
        index_bytes: db.budget().snapshot().index_bytes,
    };
    drop(shard);
    (counts, end, db.adaptation_stats())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn planned_paths_converge_to_the_sequential_executor(w in workload_strategy()) {
        // The sequential executor: every scan plans and applies under the
        // shard write lock; its state after each query IS the contract.
        let (seq_counts, seq_end, seq_stats) = run(&w, AdaptationApplyMode::Locked, 1);
        prop_assert_eq!(seq_stats, aib_core::AdaptationStats::default());

        // Inline: read-only snapshot planning, synchronous locked apply —
        // read-your-writes, so it must match without any drain help.
        let (inline_counts, inline_end, inline_stats) =
            run(&w, AdaptationApplyMode::Inline, 1);
        prop_assert_eq!(&inline_counts, &seq_counts, "inline results diverged");
        prop_assert_eq!(&inline_end, &seq_end, "inline end state diverged");
        prop_assert_eq!(inline_stats, aib_core::AdaptationStats::default());

        // Queued, drained at the sequential executor's apply points:
        // quiescent convergence must reproduce its state exactly.
        let (q_counts, q_end, q_stats) = run(&w, AdaptationApplyMode::Queued, 1);
        prop_assert_eq!(&q_counts, &seq_counts, "queued results diverged");
        prop_assert_eq!(&q_end, &seq_end, "queued end state diverged after drain");
        prop_assert_eq!(q_stats.depth, 0, "drain left batches parked");
        prop_assert_eq!(
            q_stats.applied + q_stats.dropped + q_stats.rejected,
            q_stats.enqueued,
            "unaccounted batches"
        );

        // Queued with lazy drains: query results must STILL be exact (the
        // scan answers staged pages by reading them), and the post-drain
        // state must satisfy the shadow model (checked inside `run`), even
        // though it may legitimately differ from the sequential end state
        // when a batch was parked across a later query's planning.
        let (lazy_counts, _lazy_end, lazy_stats) =
            run(&w, AdaptationApplyMode::Queued, w.drain_every);
        prop_assert_eq!(&lazy_counts, &seq_counts, "lazily drained results diverged");
        prop_assert_eq!(lazy_stats.depth, 0, "final drain left batches parked");
        prop_assert_eq!(
            lazy_stats.applied + lazy_stats.dropped + lazy_stats.rejected,
            lazy_stats.enqueued,
            "unaccounted batches"
        );
    }
}
