//! The rule families.
//!
//! Each rule walks the stripped text of one file (comments, strings, and
//! `#[cfg(test)]` items already blanked — see [`crate::lexer`]) and emits
//! [`Violation`]s. Rules map one-to-one onto the paper invariants the
//! compiler cannot check:
//!
//! | rule id              | invariant                                                        |
//! |----------------------|------------------------------------------------------------------|
//! | `counter-confinement`| `C[p]` mutates only via Table I / Algorithm 1 / displacement (§III) |
//! | `no-panic`           | library code returns errors instead of panicking                 |
//! | `no-index`           | no panicking slice/array indexing in library code                |
//! | `atomics-order`      | `Ordering::Relaxed` only on allowlisted telemetry counters       |
//! | `sync-shim`          | atomics and locks come from the `aib_core::sync` / `aib_storage::sync` shim (so `--cfg aib_model` builds can interpose the model runtime), never raw `std::sync::atomic` / `parking_lot` |
//! | `lock-order`         | hierarchy `catalog → shard(0) → … → shard(n-1) → pool`: catalog outermost, shard locks in ascending index order, BufferPool innermost |
//! | `crate-hygiene`      | crate roots forbid unsafe code and deny missing docs             |
//! | `database-result`    | every `&mut self` `pub fn` on `Database` returns `Result<_, EngineError>` |
//! | `durable-io`         | in `wal.rs` / `file_backend.rs` / `commit.rs`, every raw file-I/O result is converted to `StorageError` in the same statement — never unwrapped, never discarded; and `sync_data` is *called* only in `wal.rs` / `file_backend.rs` (the commit pipeline goes through the `Wal` batch API) |
//!
//! (`no-index`, `database-result`, and `durable-io` are sub-rules of the
//! panic-freedom and hygiene families, split out so the `allow(...)` escape
//! hatch can target them individually.)

use crate::lexer::Stripped;
use crate::walk::{is_crate_root, is_test_code};

/// One finding: file, 1-based line, rule id, human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Root-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (usable in `aib-lint: allow(<rule>)`).
    pub rule: &'static str,
    /// What went wrong.
    pub message: String,
}

/// The only modules allowed to mutate `PageCounters` (`counters.rs` itself,
/// plus the Table I maintenance matrix, Algorithm 1's indexing scan, and the
/// Algorithm 2 displacement pipeline).
const COUNTER_MUTATION_SITES: &[&str] = &[
    "crates/core/src/counters.rs",
    "crates/core/src/maintenance.rs",
    "crates/core/src/scan.rs",
    "crates/core/src/space.rs",
];

/// Mutating `PageCounters` API surface. `ensure_page` is deliberately absent:
/// growing the tracked range is a registration concern, not a Table I
/// transition, and the engine needs it when the heap allocates pages.
const COUNTER_MUTATORS: &[&str] = &[
    ".increment(",
    ".decrement(",
    ".set_zero(",
    ".restore(",
    ".from_counts(",
    "PageCounters::from_counts",
];

/// `Ordering::Relaxed` allowlist: `(path suffix, required line substring)`.
/// An empty substring allows every occurrence in the file. Everything here is
/// monotonic telemetry or mutex-protected state — never an ordering that
/// guards a reserve/charge decision (see `crates/storage/src/budget.rs` for
/// the written audit).
const RELAXED_ALLOWLIST: &[(&str, &str)] = &[
    // I/O accounting: monotonic counters read only for reporting.
    ("crates/storage/src/stats.rs", ""),
    // Budget telemetry: denial/displacement tallies do not synchronize the
    // CAS loop that admits reservations; that loop is Acquire/AcqRel.
    ("crates/storage/src/budget.rs", "denials"),
    ("crates/storage/src/budget.rs", "displacements"),
    // Pin counts: every increment happens under the pool's state mutex,
    // which already orders them; the lock-free decrement is Release and the
    // evictor's read is Acquire, so the pair that matters is not Relaxed.
    (
        "crates/storage/src/buffer_pool.rs",
        "pins[frame].fetch_add(1, Ordering::Relaxed)",
    ),
    // Work-claiming cursor: atomicity alone guarantees each chunk index is
    // claimed once; result visibility comes from the scope join, not the
    // counter.
    ("crates/core/src/scan.rs", "cursor.fetch_add"),
    // Query sequence numbers: the counter only needs uniqueness across
    // client threads; every read is for reporting, and nothing is published
    // or consumed through it.
    ("crates/engine/src/db.rs", "queries_executed"),
    // Adaptation-queue telemetry: enqueued/applied/dropped/rejected are
    // monotonic tallies mutated under the queue mutex or the shard write
    // lock and read only for reporting; the synchronizing edge of the
    // queue is the `depth` Release/Acquire pair, audited in DESIGN §6.
    ("crates/core/src/sharded.rs", "enqueued"),
    ("crates/core/src/sharded.rs", "applied"),
    ("crates/core/src/sharded.rs", "dropped"),
    ("crates/core/src/sharded.rs", "rejected"),
    // Queue-depth cap: a config knob read at push time. No ordering guards
    // it — a racing resize only changes whether that push parks or falls
    // back to the inline apply, and both outcomes are correct.
    ("crates/core/src/sharded.rs", "queue_limit"),
];

/// Lints one stripped file. `rel` is the root-relative path.
pub fn lint_file(rel: &str, stripped: &Stripped) -> Vec<Violation> {
    let mut out = Vec::new();
    if is_crate_root(rel) {
        crate_hygiene(rel, stripped, &mut out);
    }
    if is_test_code(rel) {
        return out;
    }
    counter_confinement(rel, stripped, &mut out);
    no_panic(rel, stripped, &mut out);
    no_index(rel, stripped, &mut out);
    atomics_order(rel, stripped, &mut out);
    sync_shim(rel, stripped, &mut out);
    lock_order(rel, stripped, &mut out);
    database_result(rel, stripped, &mut out);
    durable_io(rel, stripped, &mut out);
    out
}

fn push(
    out: &mut Vec<Violation>,
    stripped: &Stripped,
    rel: &str,
    line_idx: usize,
    rule: &'static str,
    message: String,
) {
    if !stripped.is_allowed(line_idx, rule) {
        out.push(Violation {
            file: rel.to_string(),
            line: line_idx + 1,
            rule,
            message,
        });
    }
}

// ---------------------------------------------------------------------------
// Rule 1: counter-mutation confinement
// ---------------------------------------------------------------------------

fn counter_confinement(rel: &str, stripped: &Stripped, out: &mut Vec<Violation>) {
    if COUNTER_MUTATION_SITES.contains(&rel) {
        return;
    }
    for (idx, line) in stripped.text.lines().enumerate() {
        for token in COUNTER_MUTATORS {
            if line.contains(token) {
                push(
                    out,
                    stripped,
                    rel,
                    idx,
                    "counter-confinement",
                    format!(
                        "`{}` mutates PageCounters outside the Table I / Algorithm 1 / \
                         displacement sites (aib-core maintenance, scan, space)",
                        token.trim_matches(|c| c == '.' || c == '(')
                    ),
                );
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 2a: no panicking calls in library code
// ---------------------------------------------------------------------------

fn no_panic(rel: &str, stripped: &Stripped, out: &mut Vec<Violation>) {
    const PANICS: &[&str] = &[
        ".unwrap()",
        ".expect(",
        "panic!",
        "unreachable!",
        "todo!",
        "unimplemented!",
    ];
    for (idx, line) in stripped.text.lines().enumerate() {
        for token in PANICS {
            let Some(pos) = line.find(token) else {
                continue;
            };
            // Word-boundary check for the macro tokens: `catch_panic!` or
            // `my_unreachable!` must not match.
            if !token.starts_with('.') {
                let boundary_ok = pos == 0
                    || line
                        .get(..pos)
                        .and_then(|s| s.chars().next_back())
                        .is_none_or(|p| !(p.is_alphanumeric() || p == '_'));
                if !boundary_ok {
                    continue;
                }
            }
            push(
                out,
                stripped,
                rel,
                idx,
                "no-panic",
                format!("`{token}` in library code; return an error instead"),
            );
            break;
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 2b: no panicking slice/array indexing in library code
// ---------------------------------------------------------------------------

fn no_index(rel: &str, stripped: &Stripped, out: &mut Vec<Violation>) {
    for (idx, line) in stripped.text.lines().enumerate() {
        let chars: Vec<char> = line.chars().collect();
        let mut reported = false;
        for (col, &c) in chars.iter().enumerate() {
            if reported {
                break;
            }
            if c != '[' {
                continue;
            }
            // Indexing expression: `[` directly follows an identifier tail,
            // `)`, or `]`. (`#[`, `![`, `vec![`, types and array literals all
            // have a different preceding character and fall through.)
            let prev = chars
                .get(..col)
                .and_then(|s| s.iter().rev().find(|ch| !ch.is_whitespace()))
                .copied()
                .unwrap_or('\0');
            if !(prev.is_alphanumeric() || prev == '_' || prev == ')' || prev == ']') {
                continue;
            }
            // `for x in [a, b]`, `match [..]` etc.: a keyword before `[`
            // introduces an array literal operand, not an indexing expression.
            if prev.is_alphanumeric() || prev == '_' {
                let mut end = col;
                while end > 0 && chars.get(end - 1).is_some_and(|ch| ch.is_whitespace()) {
                    end -= 1;
                }
                let mut start = end;
                while start > 0
                    && chars
                        .get(start - 1)
                        .is_some_and(|ch| ch.is_alphanumeric() || *ch == '_')
                {
                    start -= 1;
                }
                let word: String = chars
                    .get(start..end)
                    .map(|s| s.iter().collect())
                    .unwrap_or_default();
                const KEYWORDS: &[&str] = &[
                    "in", "if", "else", "match", "return", "while", "mut", "ref", "move", "as",
                    "let", "break", "loop", "yield",
                ];
                if KEYWORDS.iter().any(|k| *k == word) {
                    continue;
                }
                // `&'a [u8]`, `&'static [T]`: a lifetime before `[` names a
                // slice type, not an indexing base.
                if start > 0 && chars.get(start - 1).copied() == Some('\'') {
                    continue;
                }
            }
            // Full-range slicing `[..]` cannot panic; skip it.
            let mut j = col + 1;
            let mut content = String::new();
            let mut depth = 1usize;
            while let Some(&ch) = chars.get(j) {
                if ch == '[' {
                    depth += 1;
                } else if ch == ']' {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                content.push(ch);
                j += 1;
            }
            if content.trim() == ".." {
                continue;
            }
            push(
                out,
                stripped,
                rel,
                idx,
                "no-index",
                format!(
                    "panicking index `[{}]` in library code; use `.get(..)` or prove \
                     bounds and add an allow",
                    content.trim()
                ),
            );
            reported = true;
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 2c: durable-storage modules convert raw I/O errors to StorageError
// ---------------------------------------------------------------------------

/// Modules on the durability path: the write-ahead log, the file backend,
/// and the group-commit pipeline. Matched by suffix so the fixture workspace
/// can seed violations under its own crate layout.
const DURABLE_IO_MODULES: &[&str] = &["wal.rs", "file_backend.rs", "commit.rs"];

/// The only modules allowed to *issue* a file fsync (`sync_data`). The
/// commit pipeline and engine stage through the `Wal` batch API instead, so
/// every fsync on the durability path is counted (`Wal::syncs`) and ordered
/// by the WAL's framing — an uncounted side-channel fsync would silently
/// skew the group-commit amortization the bench reports and could reorder
/// around the WAL-before-data contract. (`sync_all` is deliberately not
/// matched: `ShardedSpace::sync_all` is budget reconciliation, not I/O.)
const FSYNC_SITES: &[&str] = &["wal.rs", "file_backend.rs"];

/// Raw file-I/O calls whose `io::Result` must be mapped to [`StorageError`]
/// before it leaves the statement.
const DURABLE_IO_CALLS: &[&str] = &[
    ".write_all(",
    ".read_exact(",
    ".read_to_end(",
    ".sync_data()",
    ".sync_all()",
    ".set_len(",
    ".seek(",
    ".metadata()",
    "std::fs::read(",
    "std::fs::rename(",
    "std::fs::remove_file(",
    "File::open(",
    "File::create(",
    "OpenOptions::new()",
];

/// The no-panic family already bans `.unwrap()` everywhere; this sub-rule adds
/// the durable-storage-specific half of the invariant: a raw `io::Result` in
/// `wal.rs` or `file_backend.rs` must be *converted* to `StorageError` in the
/// same statement (`.map_err(|e| StorageError::io(..))` or a `match` whose
/// error arms produce one) — never silently discarded with `let _ =` or
/// `.ok()`, because a swallowed fsync error breaks the WAL-before-data
/// contract without any test noticing.
fn durable_io(rel: &str, stripped: &Stripped, out: &mut Vec<Violation>) {
    fsync_confinement(rel, stripped, out);
    if !DURABLE_IO_MODULES.iter().any(|m| rel.ends_with(m)) {
        return;
    }
    let text = &stripped.text;
    for token in DURABLE_IO_CALLS {
        let mut from = 0usize;
        while let Some(rel_pos) = text.get(from..).and_then(|s| s.find(token)) {
            let pos = from + rel_pos;
            from = pos + token.len();
            // The statement: from the call to its terminating `;` (bounded,
            // so a missing semicolon cannot borrow a later statement's
            // conversion). Multi-line builder chains stay in one statement,
            // which is exactly where the idiom puts the `map_err`.
            let window = text.get(pos..).unwrap_or("");
            let end = window.find(';').map_or(window.len().min(400), |s| s + 1);
            let stmt = window.get(..end).unwrap_or("");
            if stmt.contains("StorageError") || stmt.contains("map_err") {
                continue;
            }
            let line_idx = text.get(..pos).unwrap_or("").matches('\n').count();
            push(
                out,
                stripped,
                rel,
                line_idx,
                "durable-io",
                format!(
                    "`{}` result not converted to StorageError in this statement; \
                     durable-storage modules must map every I/O error (never \
                     discard it)",
                    token.trim_matches(|c: char| c == '.' || c == '(' || c == ')')
                ),
            );
        }
    }
}

/// The fsync-confinement half of the `durable-io` family: a `sync_data`
/// call anywhere outside [`FSYNC_SITES`] is a violation, whatever it does
/// with the result.
fn fsync_confinement(rel: &str, stripped: &Stripped, out: &mut Vec<Violation>) {
    if FSYNC_SITES.iter().any(|m| rel.ends_with(m)) {
        return;
    }
    let text = &stripped.text;
    let mut from = 0usize;
    while let Some(rel_pos) = text.get(from..).and_then(|s| s.find(".sync_data(")) {
        let pos = from + rel_pos;
        from = pos + ".sync_data(".len();
        let line_idx = text.get(..pos).unwrap_or("").matches('\n').count();
        push(
            out,
            stripped,
            rel,
            line_idx,
            "durable-io",
            "`sync_data` outside the WAL/file-backend modules; route durable \
             writes through the `Wal` batch API so every fsync is counted \
             and ordered by the commit pipeline"
                .to_string(),
        );
    }
}

// ---------------------------------------------------------------------------
// Rule 3: atomics-ordering audit
// ---------------------------------------------------------------------------

fn atomics_order(rel: &str, stripped: &Stripped, out: &mut Vec<Violation>) {
    for (idx, line) in stripped.text.lines().enumerate() {
        if !line.contains("Ordering::Relaxed") {
            continue;
        }
        let allowlisted = RELAXED_ALLOWLIST
            .iter()
            .any(|(suffix, needle)| rel.ends_with(suffix) && line.contains(needle));
        if allowlisted {
            continue;
        }
        push(
            out,
            stripped,
            rel,
            idx,
            "atomics-order",
            "`Ordering::Relaxed` outside the telemetry allowlist; use \
             Acquire/Release/AcqRel or add the site to the audit"
                .to_string(),
        );
    }
}

// ---------------------------------------------------------------------------
// Rule 3b: synchronization primitives come from the sync shim
// ---------------------------------------------------------------------------

/// Files definitionally outside the shim discipline:
/// - the shim modules themselves (any `src/sync.rs`), which hold the one
///   cfg-switched raw import per workspace;
/// - the `aib-model` crate, whose instrumented runtime is *implemented on*
///   `std::sync` and must not route through itself.
///
/// `crates/storage/src/buffer_pool.rs` is deliberately **not** here: its
/// `parking_lot` usage (Arc-based frame-latch guards the shim cannot
/// express) is excused with an `allow-file(sync-shim)` directive carrying
/// the justification, so `--stale-allows` keeps it honest.
const SYNC_SHIM_EXEMPT_SUFFIXES: &[&str] = &["src/sync.rs"];
const SYNC_SHIM_EXEMPT_PREFIXES: &[&str] = &["crates/model/"];

/// Raw synchronization paths that bypass the shim. Matching the path (not
/// just the type name) keeps shimmed code clean: `use crate::sync::AtomicU64`
/// mentions none of these.
const SYNC_RAW_PATHS: &[&str] = &[
    "std::sync::atomic",
    "parking_lot::",
    "std::sync::Mutex",
    "std::sync::RwLock",
    "std::sync::Condvar",
    "std::sync::Barrier",
    // A raw channel is a lock + condvar the model checker cannot see; the
    // adaptation queue must stay a shimmed `Mutex<VecDeque>` so its
    // push/drain edges are part of the explored schedule.
    "std::sync::mpsc",
];

/// Every atomic and lock in library code must come through the
/// `aib_storage::sync` / `aib_core::sync` shim, so that `--cfg aib_model`
/// builds transparently swap std + `parking_lot` for the `aib-model`
/// runtime. A raw path is invisible to the model checker: its loads and
/// stores happen outside the explored schedule, silently weakening every
/// model test that touches the file.
fn sync_shim(rel: &str, stripped: &Stripped, out: &mut Vec<Violation>) {
    if SYNC_SHIM_EXEMPT_SUFFIXES.iter().any(|s| rel.ends_with(s))
        || SYNC_SHIM_EXEMPT_PREFIXES.iter().any(|p| rel.starts_with(p))
    {
        return;
    }
    for (idx, line) in stripped.text.lines().enumerate() {
        for token in SYNC_RAW_PATHS {
            if line.contains(token) {
                push(
                    out,
                    stripped,
                    rel,
                    idx,
                    "sync-shim",
                    format!(
                        "raw `{token}` bypasses the sync shim; import atomics and \
                         locks from `crate::sync` (aib_core/aib_storage) so \
                         `--cfg aib_model` builds can interpose the model runtime"
                    ),
                );
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 4: lock-order discipline
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum LockKind {
    Catalog,
    /// A shard of the `ShardedSpace`; the index is `Some` only when it is a
    /// statically-known literal (a `shards[2]` receiver or a
    /// `shard_write(2)` argument). `write_all`/`read_all` and dynamically
    /// computed indices are `None` — they still anchor the shard tier in the
    /// catalog/pool checks, but cannot participate in the ascending test.
    Shard(Option<u64>),
    Pool,
    /// A queue-class leaf mutex: the per-shard adaptation queue
    /// (`batches`), the applier registry (`applier`), or the group-commit
    /// queue (`queue`). These sit *below* every tier — they are taken with
    /// shard or catalog locks already held and must never be held across
    /// another acquisition.
    Queue,
}

fn lock_order(rel: &str, stripped: &Stripped, out: &mut Vec<Violation>) {
    for body in function_bodies(&stripped.text) {
        let mut shard_seen: Option<usize> = None;
        let mut pool_seen: Option<usize> = None;
        let mut queue_seen: Option<usize> = None;
        // Highest statically-known shard index locked so far, with its line.
        let mut max_shard: Option<(u64, usize)> = None;
        for (line_idx, kind) in lock_acquisitions(&stripped.text, body.clone()) {
            // Queue-class mutexes are leaves of the whole hierarchy:
            // acquiring *any* tiered lock after one in the same body risks
            // a deadlock against the drain path, which enters the queue
            // with the shard write lock already held.
            if let Some(queue_line) = queue_seen {
                if !matches!(kind, LockKind::Queue) {
                    push(
                        out,
                        stripped,
                        rel,
                        line_idx,
                        "lock-order",
                        format!(
                            "tiered lock acquired after a queue-class leaf mutex (queue \
                             lock at line {}); adaptation/commit queue mutexes are \
                             leaves below catalog → shard(i) → pool and must be \
                             released before any other acquisition",
                            queue_line + 1
                        ),
                    );
                }
            }
            match kind {
                LockKind::Queue => {
                    queue_seen.get_or_insert(line_idx);
                }
                LockKind::Catalog => {
                    // The catalog is the engine's outermost lock: a reader
                    // or writer that already holds a shard or a pool lock
                    // must never wait on it, or a query holding the catalog
                    // and wanting the space deadlocks against it.
                    let inner = match (shard_seen, pool_seen) {
                        (Some(s), Some(p)) if p < s => Some((p, "BufferPool")),
                        (Some(s), _) => Some((s, "space shard")),
                        (None, Some(p)) => Some((p, "BufferPool")),
                        (None, None) => None,
                    };
                    if let Some((inner_line, inner_name)) = inner {
                        push(
                            out,
                            stripped,
                            rel,
                            line_idx,
                            "lock-order",
                            format!(
                                "Catalog lock acquired after {inner_name} lock (at line \
                                 {}); the catalog is the outermost lock and must come \
                                 first",
                                inner_line + 1
                            ),
                        );
                    }
                }
                LockKind::Shard(index) => {
                    shard_seen.get_or_insert(line_idx);
                    // The pool is the innermost tier: a thread holding a
                    // frame latch must never wait on a shard, or a scan
                    // holding a shard and pinning pages deadlocks against it.
                    if let Some(pool_line) = pool_seen {
                        push(
                            out,
                            stripped,
                            rel,
                            line_idx,
                            "lock-order",
                            format!(
                                "space shard lock acquired after BufferPool lock (pool \
                                 lock at line {}); the pool is the innermost lock in \
                                 catalog → shard(i) → pool",
                                pool_line + 1
                            ),
                        );
                    }
                    // Ascending-shard-index rule: two shards may only be held
                    // together when taken in ascending order (the order
                    // `write_all`/`read_all` use), or two multi-shard callers
                    // deadlock against each other.
                    if let Some(i) = index {
                        if let Some((max_i, max_line)) = max_shard {
                            if i < max_i {
                                push(
                                    out,
                                    stripped,
                                    rel,
                                    line_idx,
                                    "lock-order",
                                    format!(
                                        "shard {i} lock acquired after shard {max_i} \
                                         (at line {}); shard locks must be taken in \
                                         ascending index order",
                                        max_line + 1
                                    ),
                                );
                            }
                        }
                        if max_shard.is_none_or(|(m, _)| i > m) {
                            max_shard = Some((i, line_idx));
                        }
                    }
                }
                LockKind::Pool => {
                    pool_seen.get_or_insert(line_idx);
                }
            }
        }
    }
}

/// Byte ranges of every `fn` body in the stripped text.
fn function_bodies(text: &str) -> Vec<std::ops::Range<usize>> {
    let chars: Vec<(usize, char)> = text.char_indices().collect();
    let mut bodies = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars.get(i).map(|&(_, ch)| ch).unwrap_or('\0');
        // Match the keyword `fn` on word boundaries.
        if c == 'f'
            && matches!(chars.get(i + 1), Some((_, 'n')))
            && chars
                .get(i + 2)
                .is_none_or(|&(_, nx)| !(nx.is_alphanumeric() || nx == '_'))
            && (i == 0
                || chars
                    .get(i - 1)
                    .is_none_or(|&(_, pv)| !(pv.is_alphanumeric() || pv == '_')))
        {
            // Scan forward for the body `{`; a `;` at depth 0 means a trait
            // method declaration with no body.
            let mut j = i + 2;
            let mut paren = 0i64;
            let mut body_start: Option<usize> = None;
            while let Some(&(p, ch)) = chars.get(j) {
                match ch {
                    '(' | '<' => paren += 1,
                    ')' | '>' => paren -= 1,
                    '{' if paren <= 0 => {
                        body_start = Some(p);
                        break;
                    }
                    ';' if paren <= 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if let Some(start) = body_start {
                // Brace-match to find the end.
                let mut depth = 0i64;
                let mut end = text.len();
                let mut k = j;
                while let Some(&(p, ch)) = chars.get(k) {
                    if ch == '{' {
                        depth += 1;
                    } else if ch == '}' {
                        depth -= 1;
                        if depth == 0 {
                            end = p;
                            break;
                        }
                    }
                    k += 1;
                }
                bodies.push(start..end);
            }
            i = j.max(i + 2);
        } else {
            i += 1;
        }
    }
    bodies
}

/// Lock acquisitions inside `range`, classified by receiver name or method,
/// in source order. Three families:
/// - guard methods (`.lock()` / `.read()` / `.write()` with no arguments),
///   classified by walking back over the receiver chain — including `[i]`
///   subscripts, so `shards[2].write()` is shard 2;
/// - shard-scoped accessors (`.shard_write(i)` / `.shard_read(i)`), with the
///   index recovered when the argument is an integer literal;
/// - whole-space sweeps (`.write_all()` / `.read_all()`), which acquire every
///   shard ascending and count as an index-unknown shard acquisition.
fn lock_acquisitions(text: &str, range: std::ops::Range<usize>) -> Vec<(usize, LockKind)> {
    let body = text.get(range.clone()).unwrap_or("");
    let base_line = text.get(..range.start).unwrap_or("").matches('\n').count();
    let mut found = Vec::new();
    for method in [".lock()", ".read()", ".write()"] {
        let mut from = 0usize;
        while let Some(rel_pos) = body.get(from..).and_then(|s| s.find(method)) {
            let pos = from + rel_pos;
            // Receiver chain: walk back over identifier chars, dots, and
            // subscript brackets (`self.shards[2]`).
            let recv: String = body
                .get(..pos)
                .unwrap_or("")
                .chars()
                .rev()
                .take_while(|c| c.is_alphanumeric() || matches!(c, '_' | '.' | '[' | ']'))
                .collect::<String>()
                .chars()
                .rev()
                .collect();
            let lower = recv.to_lowercase();
            // Queue names first: `queues[shard]` contains "shard" but is the
            // adaptation queue of that shard, not the shard lock itself.
            let kind = if lower.contains("queue")
                || lower.contains("batches")
                || lower.contains("applier")
            {
                Some(LockKind::Queue)
            } else if lower.contains("catalog") {
                Some(LockKind::Catalog)
            } else if lower.contains("pool") || lower.contains("frame") {
                Some(LockKind::Pool)
            } else if lower.contains("shard") {
                Some(LockKind::Shard(subscript_index(&recv)))
            } else if lower.contains("space") {
                // A bare guard on a space receiver is one shard of the
                // (possibly single-shard) space.
                Some(LockKind::Shard(None))
            } else {
                None
            };
            if let Some(kind) = kind {
                let line = base_line + body.get(..pos).unwrap_or("").matches('\n').count();
                found.push((pos, line, kind));
            }
            from = pos + method.len();
        }
    }
    for method in [".shard_write(", ".shard_read("] {
        let mut from = 0usize;
        while let Some(rel_pos) = body.get(from..).and_then(|s| s.find(method)) {
            let pos = from + rel_pos;
            let arg_start = pos + method.len();
            let index = argument_index(body, arg_start);
            let line = base_line + body.get(..pos).unwrap_or("").matches('\n').count();
            found.push((pos, line, LockKind::Shard(index)));
            from = arg_start;
        }
    }
    for method in [".write_all()", ".read_all()"] {
        let mut from = 0usize;
        while let Some(rel_pos) = body.get(from..).and_then(|s| s.find(method)) {
            let pos = from + rel_pos;
            let line = base_line + body.get(..pos).unwrap_or("").matches('\n').count();
            found.push((pos, line, LockKind::Shard(None)));
            from = pos + method.len();
        }
    }
    found.sort_by_key(|&(pos, _, _)| pos);
    found
        .into_iter()
        .map(|(_, line, kind)| (line, kind))
        .collect()
}

/// The literal index of a trailing `[N]` subscript in a receiver chain, if
/// any (`self.shards[2]` → `Some(2)`, `self.shards[i]` → `None`).
fn subscript_index(recv: &str) -> Option<u64> {
    let inner = recv.strip_suffix(']')?;
    let open = inner.rfind('[')?;
    inner.get(open + 1..)?.trim().replace('_', "").parse().ok()
}

/// The literal value of a call argument starting at `from` (just past the
/// opening paren), if the whole argument is one integer literal.
fn argument_index(body: &str, from: usize) -> Option<u64> {
    let rest = body.get(from..)?;
    let close = rest.find(')')?;
    rest.get(..close)?.trim().replace('_', "").parse().ok()
}

// ---------------------------------------------------------------------------
// Rule 5a: crate hygiene
// ---------------------------------------------------------------------------

fn crate_hygiene(rel: &str, stripped: &Stripped, out: &mut Vec<Violation>) {
    if !stripped.text.contains("#![forbid(unsafe_code)]") {
        push(
            out,
            stripped,
            rel,
            0,
            "crate-hygiene",
            "crate root must carry `#![forbid(unsafe_code)]`".to_string(),
        );
    }
    if !stripped.text.contains("#![deny(missing_docs)]") {
        push(
            out,
            stripped,
            rel,
            0,
            "crate-hygiene",
            "crate root must carry `#![deny(missing_docs)]` (or an allow-file \
             directive with justification)"
                .to_string(),
        );
    }
}

// ---------------------------------------------------------------------------
// Rule 5b: every state-mutating `pub fn` on `Database` returns
// `Result<_, EngineError>`.
//
// Scope: methods taking `&mut self`. Constructors (no receiver) and `&self`
// inspection accessors are exempt by design — they cannot fail and have no
// engine error to report; forcing `Result` there would only add `.unwrap()`s
// at call sites, the opposite of what the panic-freedom family wants.
// ---------------------------------------------------------------------------

fn database_result(rel: &str, stripped: &Stripped, out: &mut Vec<Violation>) {
    let text = &stripped.text;
    let mut from = 0usize;
    while let Some(rel_pos) = text.get(from..).and_then(|s| s.find("impl Database")) {
        let pos = from + rel_pos;
        from = pos + "impl Database".len();
        // Must be the inherent impl: next non-whitespace char is `{`.
        let after = text.get(from..).unwrap_or("");
        if !after.trim_start().starts_with('{') {
            continue;
        }
        // Brace-match the impl block.
        let chars: Vec<(usize, char)> = text.char_indices().filter(|&(p, _)| p >= from).collect();
        let mut depth = 0i64;
        let mut end = text.len();
        for &(p, ch) in &chars {
            if ch == '{' {
                depth += 1;
            } else if ch == '}' {
                depth -= 1;
                if depth == 0 {
                    end = p;
                    break;
                }
            }
        }
        let body = text.get(from..end).unwrap_or("");
        let body_base = from;
        let mut scan = 0usize;
        while let Some(fn_rel) = body.get(scan..).and_then(|s| s.find("pub fn ")) {
            let fn_pos = scan + fn_rel;
            scan = fn_pos + "pub fn ".len();
            let line_idx = text
                .get(..body_base + fn_pos)
                .unwrap_or("")
                .matches('\n')
                .count();
            // Signature: from `pub fn` to the body `{` (or `;`), skipping the
            // parameter parens.
            let sig_area = body.get(fn_pos..).unwrap_or("");
            let mut paren = 0i64;
            let mut sig_end = sig_area.len();
            for (p, ch) in sig_area.char_indices() {
                match ch {
                    '(' => paren += 1,
                    ')' => paren -= 1,
                    '{' | ';' if paren == 0 && p > 0 => {
                        sig_end = p;
                        break;
                    }
                    _ => {}
                }
            }
            let sig = sig_area.get(..sig_end).unwrap_or("");
            if !sig.contains("&mut self") {
                continue;
            }
            let returns_engine_result = sig.contains("EngineResult")
                || (sig.contains("Result<") && sig.contains("EngineError"));
            if !returns_engine_result {
                push(
                    out,
                    stripped,
                    rel,
                    line_idx,
                    "database-result",
                    "state-mutating `pub fn` on Database must return \
                     `EngineResult<_>` (Result<_, EngineError>)"
                        .to_string(),
                );
            }
        }
    }
}
