//! `aib-lint`: repo-specific static analysis for the Adaptive Index Buffer
//! workspace.
//!
//! The reproduction's correctness rests on invariants the Rust compiler
//! cannot see: per-page counters `C[p]` may only change through the Table I
//! maintenance matrix and Algorithm 1's `set_zero`/`restore` (paper §III),
//! skip decisions must only *read* counters, every byte charged to the
//! `MemoryBudget` must equal the sum of live footprints, and lock acquisition
//! must follow a fixed order. This crate machine-checks the statically
//! checkable half of those invariants (the runtime half lives in
//! `aib-core::invariants` behind the `invariant-checks` feature).
//!
//! Run it with `cargo run -p aib-lint` from the workspace root; it exits
//! non-zero when any rule fires. Suppress a finding with
//! `// aib-lint: allow(<rule>)` on (or directly above) the offending line, or
//! `// aib-lint: allow-file(<rule>)` for a whole file — always with a written
//! justification.
//!
//! The crate has **zero dependencies** and parses Rust with a
//! comment/string-stripping token scanner, because the build environment is
//! fully offline and `syn` is unavailable. That makes the rules heuristic —
//! they match token patterns, not resolved paths — which is the right
//! trade-off for a repo-local lint: false positives are handled with an
//! inline allow and a sentence of justification.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod lexer;
pub mod rules;
pub mod walk;

pub use lexer::{strip, Stripped};
pub use rules::{lint_file, Violation};
pub use walk::{collect_rust_files, is_crate_root, is_test_code, SourceFile};

use std::path::Path;

/// Lints a single source string as if it lived at root-relative path `rel`.
/// This is the entry point the self-tests use to seed violations.
pub fn lint_source(rel: &str, source: &str) -> Vec<Violation> {
    let stripped = lexer::strip(source);
    rules::lint_file(rel, &stripped)
}

/// Lints every `.rs` file under `root`. Returns all violations, sorted by
/// file and line, or an I/O-ish error message.
pub fn lint_root(root: &Path) -> Result<Vec<Violation>, String> {
    let files = walk::collect_rust_files(root)?;
    let mut all = Vec::new();
    for file in &files {
        let source = std::fs::read_to_string(&file.abs)
            .map_err(|e| format!("read {}: {e}", file.abs.display()))?;
        all.extend(lint_source(&file.rel, &source));
    }
    all.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(all)
}
