//! `aib-lint`: repo-specific static analysis for the Adaptive Index Buffer
//! workspace.
//!
//! The reproduction's correctness rests on invariants the Rust compiler
//! cannot see: per-page counters `C[p]` may only change through the Table I
//! maintenance matrix and Algorithm 1's `set_zero`/`restore` (paper §III),
//! skip decisions must only *read* counters, every byte charged to the
//! `MemoryBudget` must equal the sum of live footprints, and lock acquisition
//! must follow a fixed order. This crate machine-checks the statically
//! checkable half of those invariants (the runtime half lives in
//! `aib-core::invariants` behind the `invariant-checks` feature).
//!
//! Run it with `cargo run -p aib-lint` from the workspace root; it exits
//! non-zero when any rule fires. Suppress a finding with
//! `// aib-lint: allow(<rule>)` on (or directly above) the offending line, or
//! `// aib-lint: allow-file(<rule>)` for a whole file — always with a written
//! justification.
//!
//! The crate has **zero dependencies** and parses Rust with a
//! comment/string-stripping token scanner, because the build environment is
//! fully offline and `syn` is unavailable. That makes the rules heuristic —
//! they match token patterns, not resolved paths — which is the right
//! trade-off for a repo-local lint: false positives are handled with an
//! inline allow and a sentence of justification.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod lexer;
pub mod rules;
pub mod walk;

pub use lexer::{strip, AllowDirective, Stripped};
pub use rules::{lint_file, Violation};
pub use walk::{collect_rust_files, is_crate_root, is_test_code, SourceFile};

use std::path::Path;

/// An `aib-lint: allow(...)` / `allow-file(...)` directive that suppresses
/// no finding — dead weight that silently licenses a future regression at
/// its location. `--stale-allows` reports these so they get pruned when the
/// code they excused is fixed or removed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaleAllow {
    /// Root-relative path of the file carrying the directive.
    pub file: String,
    /// 1-based line of the directive.
    pub line: usize,
    /// The rule the directive names.
    pub rule: String,
    /// Whether it was an `allow-file(...)` (whole file) directive.
    pub file_scope: bool,
}

/// Lints `source` as if it lived at root-relative path `rel`, returning the
/// surviving violations *and* the allow directives that suppressed nothing.
///
/// Findings are produced against a directive-free view of the file, then
/// suppression is replayed with the same semantics as [`Stripped::is_allowed`]
/// (file scope, or the directive's own and next line) while recording which
/// directives actually matched a finding.
pub fn audit_source(rel: &str, source: &str) -> (Vec<Violation>, Vec<StaleAllow>) {
    let stripped = lexer::strip(source);
    let bare = Stripped {
        text: stripped.text.clone(),
        line_allows: Vec::new(),
        file_allows: Default::default(),
        directives: Vec::new(),
    };
    let raw = rules::lint_file(rel, &bare);
    let mut used = vec![false; stripped.directives.len()];
    let mut kept = Vec::new();
    for v in raw {
        let line_idx = v.line - 1;
        let mut suppressed = false;
        for (d, u) in stripped.directives.iter().zip(used.iter_mut()) {
            if d.rule == v.rule && (d.file_scope || d.line == line_idx || d.line + 1 == line_idx) {
                *u = true;
                suppressed = true;
            }
        }
        if !suppressed {
            kept.push(v);
        }
    }
    // Test-adjacent code (including the lint's own fixture workspace) is
    // exempt from the library rules, so its directives can never suppress
    // anything here — auditing them would only flag fixtures that are
    // exercised when linted as their own root.
    let stale = if walk::is_test_code(rel) {
        Vec::new()
    } else {
        stripped
            .directives
            .iter()
            .zip(&used)
            .filter(|&(_, &u)| !u)
            .map(|(d, _)| StaleAllow {
                file: rel.to_string(),
                line: d.line + 1,
                rule: d.rule.clone(),
                file_scope: d.file_scope,
            })
            .collect()
    };
    (kept, stale)
}

/// Lints a single source string as if it lived at root-relative path `rel`.
/// This is the entry point the self-tests use to seed violations.
pub fn lint_source(rel: &str, source: &str) -> Vec<Violation> {
    audit_source(rel, source).0
}

/// Lints every `.rs` file under `root`. Returns all violations, sorted by
/// file and line, or an I/O-ish error message.
pub fn lint_root(root: &Path) -> Result<Vec<Violation>, String> {
    audit_root(root).map(|(violations, _)| violations)
}

/// Lints every `.rs` file under `root` and audits its allow directives.
/// Returns `(violations, stale allows)`, each sorted by file and line.
pub fn audit_root(root: &Path) -> Result<(Vec<Violation>, Vec<StaleAllow>), String> {
    let files = walk::collect_rust_files(root)?;
    let mut all = Vec::new();
    let mut stale = Vec::new();
    for file in &files {
        let source = std::fs::read_to_string(&file.abs)
            .map_err(|e| format!("read {}: {e}", file.abs.display()))?;
        let (violations, file_stale) = audit_source(&file.rel, &source);
        all.extend(violations);
        stale.extend(file_stale);
    }
    all.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    stale.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok((all, stale))
}
