//! Workspace file discovery and path classification.
//!
//! The linter walks a root directory (by default the workspace root),
//! collects every `.rs` file, and classifies each by its path *relative to
//! the scanned root*. Test-adjacent code — integration tests, benches,
//! examples — is exempt from the library-code rules; crate roots get the
//! hygiene rule. Classifying relative paths (not absolute ones) is what lets
//! the self-test fixtures under `crates/lint/tests/fixtures/` be linted as if
//! they were a real workspace.

use std::path::{Path, PathBuf};

/// Directories never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".devstubs", "node_modules"];

/// A discovered source file with its root-relative path.
pub struct SourceFile {
    /// Path relative to the scanned root, `/`-separated.
    pub rel: String,
    /// Absolute path on disk.
    pub abs: PathBuf,
}

/// Recursively collects `.rs` files under `root`, sorted by relative path for
/// deterministic output.
pub fn collect_rust_files(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut files = Vec::new();
    collect_into(root, root, &mut files)?;
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

fn collect_into(root: &Path, dir: &Path, files: &mut Vec<SourceFile>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.iter().any(|d| *d == name) || name.starts_with('.') {
                continue;
            }
            collect_into(root, &path, files)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("strip_prefix: {e}"))?
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            files.push(SourceFile { rel, abs: path });
        }
    }
    Ok(())
}

/// True when the root-relative path is test-adjacent code (integration tests,
/// benches, examples, fixtures) that the library-code rules skip.
pub fn is_test_code(rel: &str) -> bool {
    rel.split('/')
        .any(|part| matches!(part, "tests" | "benches" | "examples" | "fixtures"))
}

/// True when the root-relative path is a crate root (`src/lib.rs` of the
/// umbrella package or of any workspace crate) subject to the hygiene rule.
pub fn is_crate_root(rel: &str) -> bool {
    if rel == "src/lib.rs" {
        return true;
    }
    let parts: Vec<&str> = rel.split('/').collect();
    matches!(parts.as_slice(), ["crates", _, "src", "lib.rs"])
}
