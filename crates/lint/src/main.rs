//! `aib-lint` binary: lint the workspace (or a directory given as the first
//! argument) and exit non-zero if any rule fires.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    match aib_lint::lint_root(Path::new(&root)) {
        Ok(violations) if violations.is_empty() => {
            eprintln!("aib-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
            }
            eprintln!("aib-lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("aib-lint: error: {e}");
            ExitCode::FAILURE
        }
    }
}
