//! `aib-lint` binary: lint the workspace (or a directory given as an
//! argument) and exit non-zero if any rule fires.
//!
//! With `--stale-allows`, additionally audits every
//! `aib-lint: allow(...)` / `allow-file(...)` directive and fails when one
//! suppresses nothing — pruning dead escape hatches before they silently
//! license a future regression.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut stale_mode = false;
    let mut root = ".".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--stale-allows" {
            stale_mode = true;
        } else {
            root = arg;
        }
    }
    match aib_lint::audit_root(Path::new(&root)) {
        Ok((violations, stale)) => {
            for v in &violations {
                println!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
            }
            let mut failures = violations.len();
            if stale_mode {
                for s in &stale {
                    let scope = if s.file_scope { "allow-file" } else { "allow" };
                    println!(
                        "{}:{}: [stale-allow] `aib-lint: {scope}({})` suppresses \
                         nothing; remove the directive",
                        s.file, s.line, s.rule
                    );
                }
                failures += stale.len();
            }
            if failures == 0 {
                eprintln!("aib-lint: clean");
                ExitCode::SUCCESS
            } else {
                eprintln!("aib-lint: {failures} finding(s)");
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("aib-lint: error: {e}");
            ExitCode::FAILURE
        }
    }
}
