//! Comment/string-stripping token scanner.
//!
//! `aib-lint` deliberately avoids a full Rust parser (the build is offline, so
//! no `syn`). Instead, every rule operates on a *stripped* view of the source
//! in which comments, string literals, char literals, and `#[cfg(test)]`
//! items have been blanked out with spaces. Blanking (rather than deleting)
//! preserves line and column positions, so diagnostics point at the original
//! source and per-line allow directives line up.
//!
//! While stripping comments the lexer also harvests the escape-hatch
//! directives:
//!
//! - `// aib-lint: allow(rule-a, rule-b)` — suppresses the named rules on the
//!   directive's own line *and the next line* (so a directive can sit on its
//!   own line above the code it excuses).
//! - `// aib-lint: allow-file(rule)` — suppresses the rule for the whole file;
//!   used for files where a pattern is pervasive and locally justified (e.g.
//!   byte-layout arithmetic in the slotted page codec).

use std::collections::BTreeSet;

/// One harvested `aib-lint: allow(...)` / `allow-file(...)` directive, kept
/// with its source position so `--stale-allows` can report directives that
/// no longer suppress anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    /// 0-based line the directive appears on.
    pub line: usize,
    /// The rule it names.
    pub rule: String,
    /// `allow-file(...)` (whole file) vs `allow(...)` (own + next line).
    pub file_scope: bool,
}

/// A source file after comment/string stripping, plus the allow directives
/// harvested from its comments.
pub struct Stripped {
    /// Blanked source text; same byte-per-char line structure as the input.
    pub text: String,
    /// For each 0-based line, the set of rules allowed on that line.
    pub line_allows: Vec<BTreeSet<String>>,
    /// Rules allowed for the entire file via `allow-file(...)`.
    pub file_allows: BTreeSet<String>,
    /// Every directive in source order, one entry per rule named (a
    /// two-rule `allow(a, b)` yields two entries, audited independently).
    pub directives: Vec<AllowDirective>,
}

impl Stripped {
    /// True when `rule` is suppressed at 0-based `line` (by a file-level or
    /// line-level directive).
    pub fn is_allowed(&self, line: usize, rule: &str) -> bool {
        if self.file_allows.contains(rule) {
            return true;
        }
        self.line_allows
            .get(line)
            .is_some_and(|set| set.contains(rule))
    }
}

/// Strips `source`, harvesting allow directives and blanking `#[cfg(test)]`
/// items so test-only code inside library files is never linted.
pub fn strip(source: &str) -> Stripped {
    let chars: Vec<char> = source.chars().collect();
    let total_lines = source.lines().count().max(1) + 1;
    let mut out: Vec<char> = Vec::with_capacity(chars.len());
    let mut line_allows: Vec<BTreeSet<String>> = vec![BTreeSet::new(); total_lines];
    let mut file_allows: BTreeSet<String> = BTreeSet::new();
    let mut directives: Vec<AllowDirective> = Vec::new();

    let at = |i: usize| chars.get(i).copied().unwrap_or('\0');
    let mut i = 0usize;
    let mut line = 0usize;

    while i < chars.len() {
        let c = at(i);
        match c {
            '/' if at(i + 1) == '/' => {
                // Line comment: harvest directives, blank to end of line.
                // Doc comments (`///`, `//!`) are documentation — prose
                // that merely quotes the directive syntax must not act as
                // a directive — so only plain comments carry directives.
                let doc = at(i + 2) == '/' || at(i + 2) == '!';
                let start = i;
                while i < chars.len() && at(i) != '\n' {
                    i += 1;
                }
                if !doc {
                    let comment: String = chars
                        .get(start..i)
                        .map(|s| s.iter().collect())
                        .unwrap_or_default();
                    harvest_directives(
                        &comment,
                        line,
                        &mut line_allows,
                        &mut file_allows,
                        &mut directives,
                    );
                }
                out.extend(std::iter::repeat_n(' ', i - start));
            }
            '/' if at(i + 1) == '*' => {
                // Block comment with nesting; newlines preserved. Doc block
                // comments (`/**`, `/*!`) are prose, like their line
                // counterparts.
                let doc = at(i + 2) == '*' || at(i + 2) == '!';
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if at(i) == '/' && at(i + 1) == '*' {
                        depth += 1;
                        i += 2;
                    } else if at(i) == '*' && at(i + 1) == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                if !doc {
                    let comment: String = chars
                        .get(start..i)
                        .map(|s| s.iter().collect())
                        .unwrap_or_default();
                    harvest_directives(
                        &comment,
                        line,
                        &mut line_allows,
                        &mut file_allows,
                        &mut directives,
                    );
                }
                for j in start..i {
                    if at(j) == '\n' {
                        out.push('\n');
                        line += 1;
                    } else {
                        out.push(' ');
                    }
                }
            }
            '"' => {
                i = blank_string(&chars, i, &mut out, &mut line);
            }
            'r' | 'b' if is_raw_string_start(&chars, i) => {
                i = blank_raw_string(&chars, i, &mut out, &mut line);
            }
            'b' if at(i + 1) == '"' => {
                out.push(' ');
                i = blank_string(&chars, i + 1, &mut out, &mut line);
            }
            '\'' => {
                // Char literal vs lifetime. A char literal closes with a quote
                // after one (possibly escaped) character; a lifetime does not.
                if at(i + 1) == '\\' {
                    // Escaped char literal: skip to closing quote.
                    let start = i;
                    i += 2;
                    while i < chars.len() && at(i) != '\'' && at(i) != '\n' {
                        i += 1;
                    }
                    i += 1; // consume closing quote
                    out.extend(std::iter::repeat_n(' ', i.min(chars.len() + 1) - start));
                } else if at(i + 2) == '\'' && at(i + 1) != '\'' {
                    out.push(' ');
                    out.push(' ');
                    out.push(' ');
                    i += 3;
                } else {
                    // Lifetime (or stray quote): keep the tick, move on.
                    out.push('\'');
                    i += 1;
                }
            }
            '\n' => {
                out.push('\n');
                line += 1;
                i += 1;
            }
            _ => {
                // Identifiers pass through whole so `r`/`b` prefixes inside
                // names (e.g. `number`) never trigger raw-string detection.
                if c.is_alphanumeric() || c == '_' {
                    while i < chars.len() && (at(i).is_alphanumeric() || at(i) == '_') {
                        out.push(at(i));
                        i += 1;
                    }
                } else {
                    out.push(c);
                    i += 1;
                }
            }
        }
    }

    let mut text: String = out.iter().collect();
    blank_cfg_test_items(&mut text);
    Stripped {
        text,
        line_allows,
        file_allows,
        directives,
    }
}

/// True when position `i` starts a raw (or raw-byte) string literal:
/// `r"`, `r#"`, `br"`, `rb"`, etc.
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    let at = |k: usize| chars.get(k).copied().unwrap_or('\0');
    // Must not be the tail of an identifier.
    if i > 0 {
        let prev = at(i - 1);
        if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    let mut j = i;
    if (at(j) == 'b' && at(j + 1) == 'r') || (at(j) == 'r' && at(j + 1) == 'b') {
        j += 2;
    } else if at(j) == 'r' {
        j += 1;
    } else {
        return false;
    }
    while at(j) == '#' {
        j += 1;
    }
    at(j) == '"'
}

/// Blanks a plain string literal starting at the opening quote `chars[i]`.
/// Returns the index just past the closing quote.
fn blank_string(chars: &[char], i: usize, out: &mut Vec<char>, line: &mut usize) -> usize {
    let at = |k: usize| chars.get(k).copied().unwrap_or('\0');
    let mut j = i + 1;
    out.push(' '); // opening quote
    while j < chars.len() {
        match at(j) {
            '\\' => {
                out.push(' ');
                out.push(' ');
                j += 2;
            }
            '"' => {
                out.push(' ');
                return j + 1;
            }
            '\n' => {
                out.push('\n');
                *line += 1;
                j += 1;
            }
            _ => {
                out.push(' ');
                j += 1;
            }
        }
    }
    j
}

/// Blanks a raw string literal starting at its `r`/`b` prefix.
/// Returns the index just past the closing delimiter.
fn blank_raw_string(chars: &[char], i: usize, out: &mut Vec<char>, line: &mut usize) -> usize {
    let at = |k: usize| chars.get(k).copied().unwrap_or('\0');
    let mut j = i;
    while at(j) == 'r' || at(j) == 'b' {
        out.push(' ');
        j += 1;
    }
    let mut hashes = 0usize;
    while at(j) == '#' {
        out.push(' ');
        hashes += 1;
        j += 1;
    }
    out.push(' '); // opening quote
    j += 1;
    while j < chars.len() {
        if at(j) == '"' {
            let mut k = 0usize;
            while k < hashes && at(j + 1 + k) == '#' {
                k += 1;
            }
            if k == hashes {
                for _ in 0..=hashes {
                    out.push(' ');
                }
                return j + 1 + hashes;
            }
        }
        if at(j) == '\n' {
            out.push('\n');
            *line += 1;
        } else {
            out.push(' ');
        }
        j += 1;
    }
    j
}

/// Parses `aib-lint:` directives out of a comment's text.
fn harvest_directives(
    comment: &str,
    line: usize,
    line_allows: &mut [BTreeSet<String>],
    file_allows: &mut BTreeSet<String>,
    directives: &mut Vec<AllowDirective>,
) {
    let Some(pos) = comment.find("aib-lint:") else {
        return;
    };
    let rest = comment.get(pos + "aib-lint:".len()..).unwrap_or("").trim();
    let (rules, file_scope) = if let Some(args) = rest.strip_prefix("allow-file(") {
        (args, true)
    } else if let Some(args) = rest.strip_prefix("allow(") {
        (args, false)
    } else {
        return;
    };
    let Some(end) = rules.find(')') else {
        return;
    };
    for rule in rules.get(..end).unwrap_or("").split(',') {
        let rule = rule.trim().to_string();
        if rule.is_empty() {
            continue;
        }
        directives.push(AllowDirective {
            line,
            rule: rule.clone(),
            file_scope,
        });
        if file_scope {
            file_allows.insert(rule);
        } else {
            for l in [line, line + 1] {
                if let Some(set) = line_allows.get_mut(l) {
                    set.insert(rule.clone());
                }
            }
        }
    }
}

/// Blanks every `#[cfg(test)]` item (typically `mod tests { ... }`) in
/// already-stripped text, so inline unit tests in library files are exempt
/// from the library-code rules.
fn blank_cfg_test_items(text: &mut String) {
    const ATTR: &str = "#[cfg(test)]";
    let mut search_from = 0usize;
    loop {
        let Some(rel) = text.get(search_from..).and_then(|s| s.find(ATTR)) else {
            return;
        };
        let attr_start = search_from + rel;
        let after_attr = attr_start + ATTR.len();
        // Walk char indices (not bytes) to stay Unicode-correct.
        let char_indices: Vec<(usize, char)> = text.char_indices().collect();

        // Find the end of the item: either a `;` (e.g. `#[cfg(test)] use x;`)
        // or a brace-matched `{ ... }` block.
        let mut depth = 0i64;
        let mut end: Option<usize> = None;
        let mut saw_brace = false;
        for (byte_pos, ch) in char_indices.iter().copied() {
            if byte_pos < after_attr {
                continue;
            }
            match ch {
                '{' => {
                    depth += 1;
                    saw_brace = true;
                }
                '}' => {
                    depth -= 1;
                    if saw_brace && depth == 0 {
                        end = Some(byte_pos + ch.len_utf8());
                        break;
                    }
                }
                ';' if !saw_brace && depth == 0 => {
                    end = Some(byte_pos + ch.len_utf8());
                    break;
                }
                _ => {}
            }
        }
        let Some(end) = end else {
            return;
        };
        let blanked: String = text
            .get(attr_start..end)
            .unwrap_or("")
            .chars()
            .map(|c| if c == '\n' { '\n' } else { ' ' })
            .collect();
        text.replace_range(attr_start..end, &blanked);
        search_from = end.min(text.len());
    }
}
