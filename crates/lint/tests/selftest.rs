//! Lint self-test: every rule family must fire on the seeded fixture
//! workspace and stay silent on the real workspace.
//!
//! Two layers:
//! 1. library-level (`lint_source`): one assertion per rule family against
//!    inline snippets, including the allow / allow-file escape hatches;
//! 2. binary-level (`CARGO_BIN_EXE_aib-lint`): the shipped binary exits
//!    non-zero on `tests/fixtures/` and zero on the repaired workspace.

use std::collections::BTreeSet;
use std::path::Path;
use std::process::Command;

use aib_lint::{audit_root, audit_source, lint_root, lint_source, Violation};

fn rules_of(violations: &[Violation]) -> BTreeSet<&'static str> {
    violations.iter().map(|v| v.rule).collect()
}

fn lint_lib(source: &str) -> Vec<Violation> {
    // A path that is library code but not a crate root and not a counter
    // mutation site.
    lint_source("crates/fixture/src/lib.rs", source)
}

#[test]
fn counter_confinement_fires_outside_core() {
    let v = lint_lib("fn f(c: &mut PageCounters) { c.increment(3); }\n");
    assert!(rules_of(&v).contains("counter-confinement"), "{v:?}");
    // The same call inside a designated mutation site is fine.
    let v = lint_source(
        "crates/core/src/maintenance.rs",
        "fn f(c: &mut PageCounters) { c.increment(3); }\n",
    );
    assert!(!rules_of(&v).contains("counter-confinement"), "{v:?}");
}

#[test]
fn no_panic_fires_on_each_macro_and_method() {
    for snippet in [
        "fn f(x: Option<u32>) { x.unwrap(); }\n",
        "fn f(x: Option<u32>) { x.expect(\"boom\"); }\n",
        "fn f() { panic!(\"boom\"); }\n",
        "fn f() { unreachable!(); }\n",
        "fn f() { todo!(); }\n",
        "fn f() { unimplemented!(); }\n",
    ] {
        let v = lint_lib(snippet);
        assert!(rules_of(&v).contains("no-panic"), "{snippet}: {v:?}");
    }
    // Identifiers that merely end in a macro name must not match.
    let v = lint_lib("fn f() { my_unreachable!(); }\n");
    assert!(!rules_of(&v).contains("no-panic"), "{v:?}");
}

#[test]
fn no_index_fires_on_slice_indexing_only() {
    let v = lint_lib("fn f(x: &[u32]) -> u32 { x[0] }\n");
    assert!(rules_of(&v).contains("no-index"), "{v:?}");
    // Attributes, array literals, and full-range slices are not indexing.
    for snippet in [
        "#[derive(Debug)]\nstruct S;\n",
        "fn f() -> [u32; 2] { [1, 2] }\n",
        "fn f(x: &[u32]) -> &[u32] { &x[..] }\n",
        "fn f() { for v in [1, 2] { let _ = v; } }\n",
        "fn f<'a>(x: &'a [u32]) -> &'a [u32] { x }\n",
        "struct S<'a> { raw: &'a [u8] }\n",
        "fn f(x: &'static [u32]) -> usize { x.len() }\n",
    ] {
        let v = lint_lib(snippet);
        assert!(!rules_of(&v).contains("no-index"), "{snippet}: {v:?}");
    }
}

#[test]
fn atomics_order_fires_off_allowlist() {
    let src = "fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }\n";
    let v = lint_lib(src);
    assert!(rules_of(&v).contains("atomics-order"), "{v:?}");
    // Allowlisted file + substring passes (I/O stats are whole-file).
    let v = lint_source("crates/storage/src/stats.rs", src);
    assert!(!rules_of(&v).contains("atomics-order"), "{v:?}");
}

#[test]
fn sync_shim_fires_on_raw_paths_outside_shim() {
    for bad in [
        "use std::sync::atomic::{AtomicU64, Ordering};\n",
        "use parking_lot::RwLock;\n",
        "use std::sync::Mutex;\n",
        "fn f() { std::sync::atomic::fence(Ordering::SeqCst); }\n",
        // A raw channel hides the adaptation queue's push/drain edges from
        // the model runtime; the queue must be a shimmed Mutex<VecDeque>.
        "use std::sync::mpsc::channel;\n",
        "fn f() { let (tx, rx) = std::sync::mpsc::channel::<u32>(); let _ = (tx, rx); }\n",
    ] {
        let v = lint_lib(bad);
        assert!(rules_of(&v).contains("sync-shim"), "{bad}: {v:?}");
    }
    // The shim modules themselves and the model runtime are exempt: they
    // are the places the raw primitives are imported on purpose.
    for rel in [
        "crates/storage/src/sync.rs",
        "crates/core/src/sync.rs",
        "crates/model/src/runtime.rs",
    ] {
        let v = lint_source(rel, "use std::sync::atomic::AtomicU64;\n");
        assert!(!rules_of(&v).contains("sync-shim"), "{rel}: {v:?}");
    }
    // Shimmed imports mention no raw path and stay clean.
    let v = lint_lib("use crate::sync::{AtomicU64, Ordering, RwLock};\n");
    assert!(!rules_of(&v).contains("sync-shim"), "{v:?}");
}

#[test]
fn stale_allow_reported_only_when_directive_is_dead() {
    // A directive that suppresses a finding is not stale.
    let (v, stale) = audit_source(
        "crates/fixture/src/other.rs",
        "// aib-lint: allow(no-panic) — justified\nfn f(x: Option<u32>) { x.unwrap(); }\n",
    );
    assert!(!rules_of(&v).contains("no-panic"), "{v:?}");
    assert!(stale.is_empty(), "{stale:?}");
    // The same directive above clean code is stale.
    let (v, stale) = audit_source(
        "crates/fixture/src/other.rs",
        "// aib-lint: allow(no-panic) — nothing here\nfn f() -> u32 { 7 }\n",
    );
    assert!(v.is_empty(), "{v:?}");
    assert_eq!(stale.len(), 1, "{stale:?}");
    assert_eq!(
        stale.first().map(|s| (s.line, s.rule.as_str())),
        Some((1, "no-panic"))
    );
    // An exercised allow-file is not stale; one for the wrong rule is.
    let (_, stale) = audit_source(
        "crates/fixture/src/other.rs",
        "// aib-lint: allow-file(no-index) — justified\nfn f(x: &[u32]) -> u32 { x[0] }\n",
    );
    assert!(stale.is_empty(), "{stale:?}");
    let (_, stale) = audit_source(
        "crates/fixture/src/other.rs",
        "// aib-lint: allow-file(no-panic) — wrong rule\nfn f(x: &[u32]) -> u32 { x[0] }\n",
    );
    assert_eq!(stale.len(), 1, "{stale:?}");
}

#[test]
fn doc_comments_quoting_directive_syntax_are_not_directives() {
    // Prose documentation of the escape hatch must neither suppress nor be
    // audited as stale.
    let (v, stale) = audit_source(
        "crates/fixture/src/other.rs",
        "//! Suppress with `// aib-lint: allow(no-panic)` on the line.\n\
         fn f(x: Option<u32>) { x.unwrap(); }\n",
    );
    assert!(rules_of(&v).contains("no-panic"), "{v:?}");
    assert!(stale.is_empty(), "{stale:?}");
}

#[test]
fn lock_order_fires_on_pool_before_shard() {
    // The pool is the innermost tier of catalog → shard(i) → pool: taking a
    // shard (or the single-shard space) after a pool lock is the violation.
    for bad in [
        "fn f(&self) { let p = self.pool.lock(); let s = self.space.lock(); }\n",
        "fn f(&self) { let p = self.pool.lock(); let s = self.shards[0].write(); }\n",
        "fn f(&self) { let p = self.pool.lock(); let g = self.space.shard_write(0); }\n",
        "fn f(&self) { let p = self.pool.lock(); let g = self.space.write_all(); }\n",
    ] {
        let v = lint_lib(bad);
        assert!(rules_of(&v).contains("lock-order"), "{bad}: {v:?}");
    }
    for good in [
        "fn f(&self) { let s = self.space.lock(); let p = self.pool.lock(); }\n",
        "fn f(&self) { let g = self.space.shard_write(0); let p = self.pool.lock(); }\n",
        // Order is per-function: separate bodies never interleave.
        "fn a(&self) { let p = self.pool.lock(); }\nfn b(&self) { let s = self.space.lock(); }\n",
    ] {
        let v = lint_lib(good);
        assert!(!rules_of(&v).contains("lock-order"), "{good}: {v:?}");
    }
}

#[test]
fn lock_order_fires_on_descending_shard_indices() {
    // Two shards held together must be taken in ascending index order — the
    // order `write_all`/`read_all` use — whether addressed by subscript or
    // through the shard-scoped accessors.
    for bad in [
        "fn f(&self) { let a = self.shards[1].write(); let b = self.shards[0].write(); }\n",
        "fn f(&self) { let a = self.space.shard_write(2); let b = self.space.shard_write(1); }\n",
        "fn f(&self) { let a = self.space.shard_read(1); let b = self.space.shard_read(0); }\n",
    ] {
        let v = lint_lib(bad);
        assert!(rules_of(&v).contains("lock-order"), "{bad}: {v:?}");
    }
    for good in [
        "fn f(&self) { let a = self.shards[0].write(); let b = self.shards[1].write(); }\n",
        "fn f(&self) { let a = self.space.shard_write(0); let b = self.space.shard_write(1); }\n",
        // Dynamically computed indices cannot be ordered statically; the
        // runtime invariant checks cover them.
        "fn f(&self, i: usize) { let a = self.space.shard_write(i); let b = self.space.shard_write(0); }\n",
        // Re-acquisition after a drop is sequential, but the lint is
        // conservative only for known literals in one body going down.
        "fn f(&self) { let a = self.space.shard_write(1); drop(a); let b = self.space.shard_write(2); }\n",
    ] {
        let v = lint_lib(good);
        assert!(!rules_of(&v).contains("lock-order"), "{good}: {v:?}");
    }
}

#[test]
fn lock_order_fires_on_tiered_lock_after_queue_leaf() {
    // Queue-class mutexes (adaptation `batches`, the `applier` registry,
    // the group-commit `queue`) are leaves of the whole hierarchy: the
    // drain path enters them with the shard write lock already held, so
    // holding one while acquiring any tiered lock is an inversion.
    for bad in [
        "fn f(&self) { let q = self.queue.lock(); let g = self.space.shard_write(0); }\n",
        "fn f(&self) { let b = self.batches.lock(); let c = self.catalog.read(); }\n",
        "fn f(&self) { let a = self.applier.lock(); let p = self.pool.lock(); }\n",
        "fn f(&self) { let q = self.queues[0].batches.lock(); let s = self.shards[0].write(); }\n",
    ] {
        let v = lint_lib(bad);
        assert!(rules_of(&v).contains("lock-order"), "{bad}: {v:?}");
    }
    for good in [
        // The drain shape: queue taken with the shard lock already held.
        "fn f(&self) { let g = self.space.shard_write(0); let q = self.queues[0].batches.lock(); }\n",
        // The group-commit leader: wal (untiered) then the commit queue.
        "fn f(&self) { let w = self.wal.lock(); let q = self.queue.lock(); }\n",
        // Queue-class locks among themselves are unordered leaves.
        "fn f(&self) { let q = self.batches.lock(); let a = self.applier.lock(); }\n",
        // Per-function scoping holds here too.
        "fn a(&self) { let q = self.queue.lock(); }\nfn b(&self) { let s = self.space.read(); }\n",
    ] {
        let v = lint_lib(good);
        assert!(!rules_of(&v).contains("lock-order"), "{good}: {v:?}");
    }
}

#[test]
fn lock_order_fires_on_catalog_after_space_or_pool() {
    // The catalog is the outermost lock of the engine hierarchy: acquiring
    // it after the space or the pool in one body is a deadlock recipe.
    for bad in [
        "fn f(&self) { let s = self.space.write(); let c = self.catalog.read(); }\n",
        "fn f(&self) { let p = self.pool.lock(); let c = self.catalog.write(); }\n",
        "fn f(&self) { let s = self.space.read(); let p = self.pool.lock(); let c = self.catalog.read(); }\n",
    ] {
        let v = lint_lib(bad);
        assert!(rules_of(&v).contains("lock-order"), "{bad}: {v:?}");
    }
    // Catalog-first (the engine's real shape) is clean, as is catalog-only.
    for good in [
        "fn f(&self) { let c = self.catalog.write(); let s = self.space.write(); }\n",
        "fn f(&self) { let c = self.catalog.read(); let p = self.pool.lock(); }\n",
        "fn f(&self) { let c = self.catalog.read(); }\n",
        // Per-function scoping holds for the catalog arm too.
        "fn a(&self) { let s = self.space.write(); }\nfn b(&self) { let c = self.catalog.read(); }\n",
    ] {
        let v = lint_lib(good);
        assert!(!rules_of(&v).contains("lock-order"), "{good}: {v:?}");
    }
}

#[test]
fn crate_hygiene_fires_on_bare_crate_root() {
    let v = lint_source("crates/fixture/src/lib.rs", "pub fn f() {}\n");
    let hygiene = v.iter().filter(|v| v.rule == "crate-hygiene").count();
    assert_eq!(
        hygiene, 2,
        "missing forbid(unsafe_code) AND deny(missing_docs): {v:?}"
    );
    let v = lint_source(
        "crates/fixture/src/lib.rs",
        "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\npub fn f() {}\n",
    );
    assert!(!rules_of(&v).contains("crate-hygiene"), "{v:?}");
    // Non-root files are exempt.
    let v = lint_source("crates/fixture/src/other.rs", "pub fn f() {}\n");
    assert!(!rules_of(&v).contains("crate-hygiene"), "{v:?}");
}

#[test]
fn database_result_fires_on_mut_self_without_engine_result() {
    let bad = "impl Database {\n    pub fn mutate(&mut self) -> usize { 0 }\n}\n";
    let v = lint_lib(bad);
    assert!(rules_of(&v).contains("database-result"), "{v:?}");
    for good in [
        // EngineResult alias.
        "impl Database {\n    pub fn mutate(&mut self) -> EngineResult<usize> { Ok(0) }\n}\n",
        // Spelled-out Result form.
        "impl Database {\n    pub fn mutate(&mut self) -> Result<usize, EngineError> { Ok(0) }\n}\n",
        // `&self` accessors and constructors are exempt by design.
        "impl Database {\n    pub fn peek(&self) -> usize { 0 }\n    pub fn new() -> Self { Database }\n}\n",
    ] {
        let v = lint_lib(good);
        assert!(!rules_of(&v).contains("database-result"), "{good}: {v:?}");
    }
}

#[test]
fn durable_io_fires_only_in_durable_modules() {
    let bad = "fn f(file: &mut File) { let _ = file.sync_data(); }\n";
    for module in [
        "crates/storage/src/wal.rs",
        "crates/storage/src/file_backend.rs",
    ] {
        let v = lint_source(module, bad);
        assert!(rules_of(&v).contains("durable-io"), "{module}: {v:?}");
    }
    // A discarded result that is not an fsync, outside the durability
    // path, is not this family's business (no-panic/no-index still apply
    // there as usual).
    let v = lint_lib("fn f(file: &mut File) { let _ = file.set_len(0); }\n");
    assert!(!rules_of(&v).contains("durable-io"), "{v:?}");
    // The idiom — mapping to StorageError in the same (multi-line)
    // statement — is clean, as is a match whose error arm converts.
    for good in [
        "fn f(file: &mut File) -> Result<(), StorageError> {\n    file\n        \
         .sync_data()\n        .map_err(|e| StorageError::io(\"fsync\", e))\n}\n",
        "fn f(p: &Path) -> Result<Vec<u8>, StorageError> {\n    match std::fs::read(p) {\n        \
         Ok(raw) => Ok(raw),\n        Err(e) => Err(StorageError::io(\"read\", e)),\n    }\n}\n",
    ] {
        let v = lint_source("crates/storage/src/wal.rs", good);
        assert!(!rules_of(&v).contains("durable-io"), "{good}: {v:?}");
    }
}

#[test]
fn durable_io_confines_fsync_to_wal_and_backend() {
    // A correctly mapped `sync_data` is still a violation anywhere outside
    // wal.rs / file_backend.rs — the commit pipeline must go through the
    // `Wal` batch API, never fsync on the side.
    let mapped = "fn f(file: &File) -> Result<(), StorageError> {\n    file.sync_data()\n        \
         .map_err(|e| StorageError::io(\"fsync\", e))\n}\n";
    for module in [
        "crates/engine/src/commit.rs",
        "crates/fixture/src/lib.rs",
        "crates/engine/src/db.rs",
    ] {
        let v = lint_source(module, mapped);
        assert!(rules_of(&v).contains("durable-io"), "{module}: {v:?}");
    }
    // The fsync sites themselves are exempt from the confinement half.
    for module in [
        "crates/storage/src/wal.rs",
        "crates/storage/src/file_backend.rs",
    ] {
        let v = lint_source(module, mapped);
        assert!(!rules_of(&v).contains("durable-io"), "{module}: {v:?}");
    }
    // `sync_all` is deliberately out of scope: `ShardedSpace::sync_all` is
    // budget reconciliation, not file I/O.
    let v = lint_lib("fn f(&self) { self.space.sync_all(); }\n");
    assert!(!rules_of(&v).contains("durable-io"), "{v:?}");
    // The commit module is a durable module for the conversion half: a
    // raw I/O result discarded there is flagged like in wal.rs.
    let v = lint_source(
        "crates/engine/src/commit.rs",
        "fn f(file: &mut File, b: &[u8]) { let _ = file.write_all(b); }\n",
    );
    assert!(rules_of(&v).contains("durable-io"), "{v:?}");
}

#[test]
fn allow_covers_own_and_next_line_only() {
    let v = lint_lib(
        "// aib-lint: allow(no-panic) — justified\nfn f(x: Option<u32>) { x.unwrap(); }\n",
    );
    assert!(!rules_of(&v).contains("no-panic"), "{v:?}");
    // Two lines below the directive is NOT covered.
    let v = lint_lib(
        "// aib-lint: allow(no-panic) — justified\n\nfn f(x: Option<u32>) { x.unwrap(); }\n",
    );
    assert!(rules_of(&v).contains("no-panic"), "{v:?}");
    // A directive for one rule does not excuse another.
    let v = lint_lib(
        "// aib-lint: allow(no-index) — wrong rule\nfn f(x: Option<u32>) { x.unwrap(); }\n",
    );
    assert!(rules_of(&v).contains("no-panic"), "{v:?}");
}

#[test]
fn allow_file_covers_whole_file() {
    let v = lint_lib(
        "// aib-lint: allow-file(no-panic) — justified\n\n\nfn f(x: Option<u32>) { x.unwrap(); }\n",
    );
    assert!(!rules_of(&v).contains("no-panic"), "{v:?}");
}

#[test]
fn test_code_is_exempt_from_library_rules() {
    let src = "fn f(x: Option<u32>) { x.unwrap(); }\n";
    for rel in [
        "crates/fixture/tests/it.rs",
        "crates/fixture/benches/b.rs",
        "crates/fixture/examples/e.rs",
    ] {
        let v = lint_source(rel, src);
        assert!(v.is_empty(), "{rel}: {v:?}");
    }
    // Inline #[cfg(test)] modules are blanked too (non-root path so the
    // hygiene rule stays out of the picture).
    let v = lint_source(
        "crates/fixture/src/other.rs",
        "#[cfg(test)]\nmod tests {\n    fn f(x: Option<u32>) { x.unwrap(); }\n}\n",
    );
    assert!(v.is_empty(), "{v:?}");
}

// ---------------------------------------------------------------------------
// Fixture workspace + binary integration
// ---------------------------------------------------------------------------

fn fixtures_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Every rule family fires at least once on the seeded fixture workspace.
#[test]
fn fixture_workspace_trips_every_rule_family() {
    let violations = lint_root(&fixtures_dir()).expect("fixtures lint cleanly");
    let rules = rules_of(&violations);
    for family in [
        "counter-confinement",
        "no-panic",
        "no-index",
        "atomics-order",
        "sync-shim",
        "lock-order",
        "crate-hygiene",
        "database-result",
        "durable-io",
    ] {
        assert!(
            rules.contains(family),
            "fixture must trip {family}: {violations:?}"
        );
    }
    // The allow-directive fixture file stays silent.
    assert!(
        violations.iter().all(|v| !v.file.ends_with("allowed.rs")),
        "allowed.rs must be fully suppressed: {violations:?}"
    );
}

/// The stale-allow audit: the seeded dead directive in `stale.rs` is
/// reported, while every directive in `allowed.rs` earns its keep.
#[test]
fn fixture_stale_allow_reported() {
    let (_, stale) = audit_root(&fixtures_dir()).expect("fixtures audit cleanly");
    assert!(
        stale
            .iter()
            .any(|s| s.file.ends_with("stale.rs") && s.rule == "no-panic"),
        "stale.rs directive must be reported: {stale:?}"
    );
    assert!(
        stale.iter().all(|s| !s.file.ends_with("allowed.rs")),
        "allowed.rs directives are all exercised: {stale:?}"
    );
}

/// The repaired workspace is clean — the whole point of this PR.
#[test]
fn real_workspace_is_clean() {
    let violations = lint_root(&workspace_root()).expect("workspace lints cleanly");
    assert!(
        violations.is_empty(),
        "workspace must be lint-clean: {violations:?}"
    );
}

/// The shipped binary exits non-zero on the fixtures and reports each family.
#[test]
fn binary_flags_fixtures_and_passes_workspace() {
    let out = Command::new(env!("CARGO_BIN_EXE_aib-lint"))
        .arg(fixtures_dir())
        .output()
        .expect("run aib-lint on fixtures");
    assert!(!out.status.success(), "fixtures must fail the lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for family in [
        "counter-confinement",
        "no-panic",
        "no-index",
        "atomics-order",
        "sync-shim",
        "lock-order",
        "crate-hygiene",
        "database-result",
        "durable-io",
    ] {
        assert!(
            stdout.contains(family),
            "binary output missing {family}:\n{stdout}"
        );
    }

    let out = Command::new(env!("CARGO_BIN_EXE_aib-lint"))
        .arg(workspace_root())
        .output()
        .expect("run aib-lint on workspace");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "workspace must pass the lint:\n{stdout}"
    );
}

/// `--stale-allows` mode: flags the dead fixture directive, passes the
/// repaired workspace (whose every directive suppresses something).
#[test]
fn binary_stale_allows_mode() {
    let out = Command::new(env!("CARGO_BIN_EXE_aib-lint"))
        .arg("--stale-allows")
        .arg(fixtures_dir())
        .output()
        .expect("run aib-lint --stale-allows on fixtures");
    assert!(!out.status.success(), "fixtures carry a stale allow");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("[stale-allow]") && stdout.contains("stale.rs"),
        "stale directive must be reported:\n{stdout}"
    );

    let out = Command::new(env!("CARGO_BIN_EXE_aib-lint"))
        .arg("--stale-allows")
        .arg(workspace_root())
        .output()
        .expect("run aib-lint --stale-allows on workspace");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "workspace must pass --stale-allows:\n{stdout}"
    );
}
