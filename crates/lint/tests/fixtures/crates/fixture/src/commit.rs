//! Self-test fixture for the fsync-confinement half of `durable-io`: the
//! file name ends in `commit.rs` — a durable module, but *not* an fsync
//! site — so calling `sync_data` here is a violation even when the result
//! is mapped correctly.

use std::fs::File;

pub fn fsync_side_channel(file: &File) -> Result<(), StorageError> {
    // durable-io: direct fsync outside wal.rs / file_backend.rs.
    file.sync_data().map_err(|e| StorageError::io("fsync", e))
}
