//! Self-test fixture: a directive that suppresses nothing. `--stale-allows`
//! must report it; the plain lint must not.

// aib-lint: allow(no-panic) — fixture: stale directive under test.
pub fn perfectly_fine() -> u32 {
    7
}
