//! Self-test fixture: one seeded violation per rule family.
//!
//! This file is never compiled — it lives under `tests/fixtures/` purely so
//! the lint self-test can point `aib-lint` at this directory and assert that
//! every rule family fires. The crate root deliberately OMITS
//! `#![forbid(unsafe_code)]` and `#![deny(missing_docs)]` (crate-hygiene).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub struct Database {
    pool: Mutex<u32>,
    space: Mutex<u32>,
    catalog: Mutex<u32>,
    counter: AtomicUsize,
}

impl Database {
    // database-result: `&mut self` pub fn that does not return EngineResult.
    pub fn mutate_without_result(&mut self, counters: &mut PageCounters) -> usize {
        // counter-confinement: PageCounters mutated outside aib-core.
        counters.increment(3);
        // atomics-order: Relaxed outside the telemetry allowlist.
        self.counter.load(Ordering::Relaxed)
    }

    pub fn wrong_lock_order(&mut self) -> EngineResult<u32> {
        // lock-order: space lock taken before the pool lock.
        let space = self.space.lock();
        let pool = self.pool.lock();
        let a = *space.map_err(|_| EngineError)?;
        let b = *pool.map_err(|_| EngineError)?;
        Ok(a + b)
    }

    pub fn catalog_not_outermost(&mut self) -> EngineResult<u32> {
        // lock-order: catalog lock taken after the space lock.
        let space = self.space.lock();
        let catalog = self.catalog.lock();
        let a = *space.map_err(|_| EngineError)?;
        let b = *catalog.map_err(|_| EngineError)?;
        Ok(a + b)
    }

    pub fn right_lock_order(&mut self) -> EngineResult<u32> {
        // Clean: catalog outermost, then pool before space.
        let catalog = self.catalog.lock();
        let pool = self.pool.lock();
        let space = self.space.lock();
        let a = *catalog.map_err(|_| EngineError)?;
        let b = *pool.map_err(|_| EngineError)?;
        let c = *space.map_err(|_| EngineError)?;
        Ok(a + b + c)
    }
}

pub fn library_code(items: &[u32], maybe: Option<u32>) -> u32 {
    // no-index: panicking slice indexing.
    let first = items[0];
    // no-panic: unwrap in library code.
    let v = maybe.unwrap();
    first + v
}

pub struct PageCounters;
impl PageCounters {
    pub fn increment(&mut self, _page: u32) {}
}

pub struct EngineError;
pub type EngineResult<T> = Result<T, EngineError>;
