//! Self-test fixture: one seeded violation per rule family.
//!
//! This file is never compiled — it lives under `tests/fixtures/` purely so
//! the lint self-test can point `aib-lint` at this directory and assert that
//! every rule family fires. The crate root deliberately OMITS
//! `#![forbid(unsafe_code)]` and `#![deny(missing_docs)]` (crate-hygiene).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub struct Database {
    pool: Mutex<u32>,
    shards: [Mutex<u32>; 2],
    space: Mutex<u32>,
    catalog: Mutex<u32>,
    queue: Mutex<u32>,
    counter: AtomicUsize,
}

impl Database {
    // database-result: `&mut self` pub fn that does not return EngineResult.
    pub fn mutate_without_result(&mut self, counters: &mut PageCounters) -> usize {
        // counter-confinement: PageCounters mutated outside aib-core.
        counters.increment(3);
        // atomics-order: Relaxed outside the telemetry allowlist.
        self.counter.load(Ordering::Relaxed)
    }

    pub fn wrong_lock_order(&mut self) -> EngineResult<u32> {
        // lock-order: pool lock taken before the shard lock (the pool is the
        // innermost tier of catalog → shard(i) → pool).
        let pool = self.pool.lock();
        let space = self.space.lock();
        let a = *space.map_err(|_| EngineError)?;
        let b = *pool.map_err(|_| EngineError)?;
        Ok(a + b)
    }

    pub fn descending_shard_order(&mut self) -> EngineResult<u32> {
        // lock-order: shard 0 taken while shard 1 is held — shard locks must
        // be acquired in ascending index order.
        let hi = self.shards[1].lock();
        let lo = self.shards[0].lock();
        let a = *hi.map_err(|_| EngineError)?;
        let b = *lo.map_err(|_| EngineError)?;
        Ok(a + b)
    }

    pub fn catalog_not_outermost(&mut self) -> EngineResult<u32> {
        // lock-order: catalog lock taken after the space lock.
        let space = self.space.lock();
        let catalog = self.catalog.lock();
        let a = *space.map_err(|_| EngineError)?;
        let b = *catalog.map_err(|_| EngineError)?;
        Ok(a + b)
    }

    pub fn tiered_lock_after_queue(&mut self) -> EngineResult<u32> {
        // lock-order: a queue-class mutex (adaptation/commit queue) is a
        // leaf of the hierarchy — a shard lock must never be acquired
        // while one is held.
        let queue = self.queue.lock();
        let shard = self.shards[0].lock();
        let a = *queue.map_err(|_| EngineError)?;
        let b = *shard.map_err(|_| EngineError)?;
        Ok(a + b)
    }

    pub fn right_lock_order(&mut self) -> EngineResult<u32> {
        // Clean: catalog outermost, shards ascending, pool innermost.
        let catalog = self.catalog.lock();
        let lo = self.shards[0].lock();
        let hi = self.shards[1].lock();
        let pool = self.pool.lock();
        let a = *catalog.map_err(|_| EngineError)?;
        let b = *lo.map_err(|_| EngineError)?;
        let c = *hi.map_err(|_| EngineError)?;
        let d = *pool.map_err(|_| EngineError)?;
        Ok(a + b + c + d)
    }
}

pub fn library_code(items: &[u32], maybe: Option<u32>) -> u32 {
    // no-index: panicking slice indexing.
    let first = items[0];
    // no-panic: unwrap in library code.
    let v = maybe.unwrap();
    first + v
}

pub struct PageCounters;
impl PageCounters {
    pub fn increment(&mut self, _page: u32) {}
}

pub struct EngineError;
pub type EngineResult<T> = Result<T, EngineError>;
