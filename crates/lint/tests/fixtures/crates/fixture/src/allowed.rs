//! Self-test fixture: every would-be violation here is suppressed by an
//! escape-hatch directive, so linting this file must report nothing.

// aib-lint: allow-file(no-index) — fixture: file-wide suppression under test.

pub fn suppressed(items: &[u32], maybe: Option<u32>) -> u32 {
    let first = items[0];
    let second = items[1];
    // aib-lint: allow(no-panic) — fixture: same-line suppression under test.
    let a = maybe.unwrap(); // aib-lint: allow(no-panic) — own line.
    // aib-lint: allow(no-panic) — fixture: next-line suppression under test.
    let b = maybe.unwrap();
    first + second + a + b
}
