//! Self-test fixture for the `durable-io` family: the file name ends in
//! `wal.rs`, so every raw I/O result here must be mapped to `StorageError`
//! in its own statement. Both functions below violate that.

use std::fs::File;
use std::io::Write;

pub fn append_without_mapping(file: &mut File, frame: &[u8]) -> std::io::Result<()> {
    // durable-io: raw io::Error propagated instead of StorageError.
    file.write_all(frame)?;
    // durable-io: fsync result silently discarded.
    let _ = file.sync_data();
    Ok(())
}
