//! Property tests of the from-scratch B+-tree against
//! `std::collections::BTreeMap`, with structural invariants checked along
//! the way.

use adaptive_index_buffer::index::BPlusTree;
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(i32, u16),
    Remove(i32),
    Get(i32),
    Range(i32, i32),
}

fn op(key_space: i32) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..key_space, any::<u16>()).prop_map(|(k, v)| Op::Insert(k, v)),
        2 => (0..key_space).prop_map(Op::Remove),
        1 => (0..key_space).prop_map(Op::Get),
        1 => (0..key_space, 0..key_space).prop_map(|(a, b)| Op::Range(a.min(b), a.max(b))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Behavioural equivalence with BTreeMap at a deliberately tiny node
    /// order, so splits and merges fire constantly.
    #[test]
    fn bplustree_matches_btreemap(
        order in 3usize..9,
        ops in prop::collection::vec(op(200), 1..400),
    ) {
        let mut tree = BPlusTree::with_order(order);
        let mut model: BTreeMap<i32, u16> = BTreeMap::new();
        for (step, op) in ops.into_iter().enumerate() {
            match op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(tree.insert(k, v), model.insert(k, v), "insert at {}", step);
                }
                Op::Remove(k) => {
                    prop_assert_eq!(tree.remove(&k), model.remove(&k), "remove at {}", step);
                }
                Op::Get(k) => {
                    prop_assert_eq!(tree.get(&k), model.get(&k), "get at {}", step);
                }
                Op::Range(lo, hi) => {
                    let got: Vec<(i32, u16)> = tree.range(&lo, &hi).map(|(k, v)| (*k, *v)).collect();
                    let want: Vec<(i32, u16)> = model.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
                    prop_assert_eq!(got, want, "range at {}", step);
                }
            }
            prop_assert_eq!(tree.len(), model.len());
        }
        tree.check_invariants();
        // Final full iteration agrees.
        let got: Vec<(i32, u16)> = tree.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<(i32, u16)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
        prop_assert_eq!(tree.first_key(), model.keys().next());
        prop_assert_eq!(tree.last_key(), model.keys().next_back());
    }

    /// Bulk insert then bulk remove in arbitrary orders always drains the
    /// tree, keeping invariants at every step.
    #[test]
    fn drain_keeps_invariants(
        order in 3usize..8,
        keys in prop::collection::btree_set(0i64..500, 1..200),
    ) {
        let keys: Vec<i64> = keys.iter().copied().collect();
        let mut tree = BPlusTree::with_order(order);
        for &k in &keys {
            tree.insert(k, ());
        }
        tree.check_invariants();
        // Remove in reversed order.
        for &k in keys.iter().rev() {
            prop_assert_eq!(tree.remove(&k), Some(()));
            tree.check_invariants();
        }
        prop_assert!(tree.is_empty());
    }
}
