//! Property tests of the online tuner (the Fig. 1 control loop):
//! capacity is never exceeded, threshold semantics are exact, and
//! decisions are consistent with the covered set.

use adaptive_index_buffer::engine::{OnlineTuner, TunerConfig};
use adaptive_index_buffer::storage::Value;
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariants over arbitrary query streams.
    #[test]
    fn tuner_invariants(
        window in 2usize..30,
        threshold in 1usize..8,
        capacity in 1usize..10,
        stream in prop::collection::vec(0i64..20, 1..400),
    ) {
        let mut tuner = OnlineTuner::new(TunerConfig { window, threshold, capacity });
        // Shadow model of the sliding window.
        let mut shadow: Vec<i64> = Vec::new();
        for (step, v) in stream.iter().enumerate() {
            let value = Value::Int(*v);
            let covered_before = tuner.is_covered(&value);
            let decision = tuner.observe(&value);
            shadow.push(*v);
            if shadow.len() > window {
                shadow.remove(0);
            }

            // (1) Capacity bound always holds.
            prop_assert!(tuner.covered_len() <= capacity, "step {step}");
            // (2) A covered value never triggers a decision.
            if covered_before {
                prop_assert!(decision.is_noop(), "step {step}: hit must be a no-op");
                prop_assert!(tuner.is_covered(&value), "hits never evict the hit value");
            }
            // (3) An add decision happens exactly when the uncovered value
            // reaches the threshold within the window.
            let count = shadow.iter().filter(|&&x| x == *v).count();
            if !covered_before {
                prop_assert_eq!(
                    decision.add.is_some(),
                    count >= threshold,
                    "step {}: count {} vs threshold {}", step, count, threshold
                );
            }
            // (4) Adds and evictions are reflected in the covered set.
            if let Some(added) = &decision.add {
                prop_assert!(tuner.is_covered(added));
            }
            for evicted in &decision.evict {
                prop_assert!(!tuner.is_covered(evicted), "step {step}");
                prop_assert_ne!(evicted, &value, "the new value is never its own victim");
            }
        }
    }

    /// LRU semantics: with capacity 1, the covered value is always the most
    /// recently *promoted* one, and hits keep it resident.
    #[test]
    fn capacity_one_keeps_most_recent_promotion(stream in prop::collection::vec(0i64..5, 1..200)) {
        let mut tuner = OnlineTuner::new(TunerConfig { window: 4, threshold: 2, capacity: 1 });
        let mut last_promoted: Option<i64> = None;
        for v in &stream {
            let value = Value::Int(*v);
            let d = tuner.observe(&value);
            if let Some(Value::Int(p)) = d.add {
                last_promoted = Some(p);
            }
            if let Some(p) = last_promoted {
                prop_assert!(tuner.is_covered(&Value::Int(p)));
                prop_assert_eq!(tuner.covered_len(), 1);
            }
        }
    }

    /// The tuner is deterministic: same stream, same decisions.
    #[test]
    fn tuner_is_deterministic(stream in prop::collection::vec(0i64..10, 1..150)) {
        let run = || {
            let mut t = OnlineTuner::new(TunerConfig { window: 8, threshold: 3, capacity: 4 });
            let mut decisions = Vec::new();
            for v in &stream {
                decisions.push(t.observe(&Value::Int(*v)));
            }
            decisions
        };
        prop_assert_eq!(run(), run());
    }
}

/// Regression-style scenario: two disjoint hot sets queried in phases drive
/// full turnover of the covered set — the Fig. 1 dynamic in miniature.
#[test]
fn phase_shift_turns_over_the_covered_set() {
    let mut tuner = OnlineTuner::new(TunerConfig {
        window: 12,
        threshold: 3,
        capacity: 3,
    });
    let mut hits: HashMap<i64, usize> = HashMap::new();
    for phase in 0..2i64 {
        let base = phase * 100;
        for round in 0..40 {
            let v = base + (round % 3);
            if tuner.is_covered(&Value::Int(v)) {
                *hits.entry(v).or_default() += 1;
            }
            tuner.observe(&Value::Int(v));
        }
    }
    // All three phase-2 values covered at the end; phase-1 values evicted.
    for v in [100, 101, 102] {
        assert!(tuner.is_covered(&Value::Int(v)), "phase-2 value {v}");
    }
    for v in [0, 1, 2] {
        assert!(
            !tuner.is_covered(&Value::Int(v)),
            "phase-1 value {v} evicted"
        );
    }
    // Both phases reached high hit rates once adapted: each value is
    // queried ~13 times per phase and covered from its 3rd occurrence on.
    assert!(hits[&0] > 8 && hits[&100] > 8, "{hits:?}");
}
