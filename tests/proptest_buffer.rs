//! The central correctness property of the Adaptive Index Buffer, checked
//! under arbitrary interleavings of DML, queries, and displacement:
//!
//! 1. **Skippability** (paper §III): for every column and page, `C[p]` is
//!    zero iff every live tuple on the page is covered by the partial index
//!    or present in the Index Buffer; otherwise `C[p]` equals the number of
//!    tuples covered by neither.
//! 2. **Query equivalence**: every point query returns exactly the rids a
//!    full decode of the table yields, no matter how warm the buffers are.
//! 3. **Space bound**: the Index Buffer Space never exceeds `L` after a
//!    scan.

use adaptive_index_buffer::core::{BufferConfig, SpaceConfig};
use adaptive_index_buffer::engine::{Database, EngineConfig, Query};
use adaptive_index_buffer::index::{Coverage, IndexBackend};
use adaptive_index_buffer::storage::{
    Column, CostModel, Rid, Schema, Tuple, Value, DEFAULT_ENTRY_FOOTPRINT,
};
use proptest::prelude::*;

const DOMAIN: i64 = 60;
const COVERED_HI: i64 = 20; // values 1..=20 covered on both columns

#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64, u16),
    Delete(usize),
    Update(usize, i64, i64),
    Query(u8, i64),
}

fn op() -> impl Strategy<Value = Op> {
    let val = 1..=DOMAIN;
    prop_oneof![
        3 => (val.clone(), val.clone(), 1u16..400).prop_map(|(a, b, len)| Op::Insert(a, b, len)),
        2 => (0usize..1000).prop_map(Op::Delete),
        2 => ((0usize..1000), val.clone(), val.clone()).prop_map(|(i, a, b)| Op::Update(i, a, b)),
        5 => ((0u8..2), val).prop_map(|(c, v)| Op::Query(c, v)),
    ]
}

fn build(seed_rows: usize, bound: Option<usize>) -> (Database, Vec<Rid>) {
    let db = Database::new(EngineConfig {
        pool_frames: 8,
        cost_model: CostModel::free(),
        space: SpaceConfig {
            max_bytes: bound.map(|b| b * DEFAULT_ENTRY_FOOTPRINT),
            i_max: 4,
            seed: 99,
            ..Default::default()
        },
        ..Default::default()
    });
    db.create_table(
        "t",
        Schema::new(vec![Column::int("a"), Column::int("b"), Column::str("pad")]),
    )
    .unwrap();
    let mut rids = Vec::new();
    for i in 0..seed_rows {
        let t = Tuple::new(vec![
            Value::Int((i as i64 * 13) % DOMAIN + 1),
            Value::Int((i as i64 * 29) % DOMAIN + 1),
            Value::from("x".repeat(1 + (i * 37) % 300)),
        ]);
        rids.push(db.insert("t", &t).unwrap());
    }
    for col in ["a", "b"] {
        db.create_partial_index(
            "t",
            col,
            Coverage::IntRange {
                lo: 1,
                hi: COVERED_HI,
            },
            IndexBackend::BTree,
            Some(BufferConfig {
                partition_pages: 3,
                ..Default::default()
            }),
        )
        .unwrap();
    }
    (db, rids)
}

/// Checks invariant 1 for both columns.
fn check_skippability(db: &Database) {
    let table = db.table("t").unwrap();
    for col in ["a", "b"] {
        let ci = table.schema().column_index(col).unwrap();
        let bid = db.buffer_id("t", col).unwrap();
        let space = db.space_shard(bid);
        let buffer = space.buffer(bid);
        let counters = space.counters(bid);
        for ord in 0..table.num_pages() {
            let uncovered: Vec<(Rid, Value)> = table
                .page_tuples(ord)
                .unwrap()
                .into_iter()
                .filter_map(|(rid, t)| {
                    let v = t.get(ci).unwrap().clone();
                    let k = v.as_int().unwrap();
                    (k > COVERED_HI).then_some((rid, v))
                })
                .collect();
            if buffer.is_buffered(ord) {
                assert_eq!(
                    counters.get(ord),
                    0,
                    "col {col} page {ord}: buffered but C>0"
                );
                for (rid, v) in &uncovered {
                    assert!(
                        buffer.contains(v, *rid),
                        "col {col} page {ord}: uncovered tuple {v}@{rid} missing from buffer"
                    );
                }
            } else {
                assert_eq!(
                    counters.get(ord) as usize,
                    uncovered.len(),
                    "col {col} page {ord}: counter out of sync"
                );
            }
        }
        buffer.check_invariants();
    }
}

fn truth(db: &Database, col: &str, value: i64) -> Vec<Rid> {
    let table = db.table("t").unwrap();
    let ci = table.schema().column_index(col).unwrap();
    let mut rids: Vec<Rid> = table
        .scan_all()
        .unwrap()
        .into_iter()
        .filter(|(_, t)| t.get(ci).unwrap().as_int() == Some(value))
        .map(|(rid, _)| rid)
        .collect();
    rids.sort_unstable();
    rids
}

fn run_case(db: Database, mut rids: Vec<Rid>, ops: Vec<Op>, bound: Option<usize>) {
    // Paper §IV: the bound is enforced *before a table scan adds entries*;
    // DML maintenance (Table I B.Add) may transiently exceed it. Each
    // insert/update can add at most one entry per indexed column.
    let mut maintenance_slack = 0usize;
    for op in ops {
        match op {
            Op::Insert(a, b, len) => {
                let t = Tuple::new(vec![
                    Value::Int(a),
                    Value::Int(b),
                    Value::from("y".repeat(len as usize)),
                ]);
                rids.push(db.insert("t", &t).unwrap());
                maintenance_slack += 2;
            }
            Op::Delete(i) => {
                if rids.is_empty() {
                    continue;
                }
                let rid = rids.remove(i % rids.len());
                db.delete("t", rid).unwrap();
            }
            Op::Update(i, a, b) => {
                if rids.is_empty() {
                    continue;
                }
                let idx = i % rids.len();
                let old = db.fetch("t", rids[idx]).unwrap();
                let pad = old.get(2).unwrap().clone();
                let t = Tuple::new(vec![Value::Int(a), Value::Int(b), pad]);
                rids[idx] = db.update("t", rids[idx], &t).unwrap();
                maintenance_slack += 2;
            }
            Op::Query(c, v) => {
                let col = if c == 0 { "a" } else { "b" };
                let (r, m) = db.execute(&Query::point("t", col, v)).unwrap().into_parts();
                let mut got = r.rids.clone();
                got.sort_unstable();
                assert_eq!(got, truth(&db, col, v), "query {col}={v}");
                if let Some(bound) = bound {
                    let total: usize = m.buffer_entries.iter().sum();
                    assert!(
                        total <= bound + maintenance_slack,
                        "space bound exceeded beyond maintenance slack: {total} > {bound} + {maintenance_slack}"
                    );
                }
            }
        }
        check_skippability(&db);
    }
    db.check_space_invariants();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Unlimited space: buffers only grow; invariants hold throughout.
    #[test]
    fn invariants_hold_unlimited(ops in prop::collection::vec(op(), 1..60)) {
        let (db, rids) = build(150, None);
        run_case(db, rids, ops, None);
    }

    /// Tight space bound: constant displacement; invariants and result
    /// correctness still hold. (The bound may be transiently exceeded by
    /// maintenance inserts between scans — paper §IV only enforces it
    /// before scan-time additions — hence the maintenance slack tracked in
    /// `run_case`.)
    #[test]
    fn invariants_hold_with_displacement(ops in prop::collection::vec(op(), 1..60)) {
        let (db, rids) = build(150, Some(60));
        run_case(db, rids, ops, Some(60));
    }
}
