//! Property tests of the storage substrate: slotted pages and heap files
//! against model implementations.

use adaptive_index_buffer::storage::page::{PageView, SlottedPage};
use adaptive_index_buffer::storage::{
    BufferPool, BufferPoolConfig, CostModel, DiskManager, HeapFile, Rid, SlotId, PAGE_SIZE,
};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum PageOp {
    Insert(Vec<u8>),
    Delete(usize),
    Update(usize, Vec<u8>),
}

fn page_op() -> impl Strategy<Value = PageOp> {
    prop_oneof![
        3 => prop::collection::vec(any::<u8>(), 1..900).prop_map(PageOp::Insert),
        1 => (0usize..64).prop_map(PageOp::Delete),
        2 => ((0usize..64), prop::collection::vec(any::<u8>(), 1..900))
            .prop_map(|(i, b)| PageOp::Update(i, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The slotted page behaves exactly like a map from slot ids to byte
    /// strings, under arbitrary insert/delete/update interleavings,
    /// including compaction.
    #[test]
    fn slotted_page_matches_model(ops in prop::collection::vec(page_op(), 1..120)) {
        let mut buf = vec![0u8; PAGE_SIZE];
        let mut page = SlottedPage::new(&mut buf);
        let mut model: HashMap<SlotId, Vec<u8>> = HashMap::new();
        let mut live_slots: Vec<SlotId> = Vec::new();

        for op in ops {
            match op {
                PageOp::Insert(bytes) => {
                    if let Some(slot) = page.insert(&bytes) {
                        prop_assert!(!model.contains_key(&slot), "insert reused a live slot");
                        model.insert(slot, bytes);
                        live_slots.push(slot);
                    } else {
                        // Rejection must mean it genuinely cannot fit.
                        prop_assert!(!page.fits(bytes.len()));
                    }
                }
                PageOp::Delete(i) => {
                    if live_slots.is_empty() { continue; }
                    let slot = live_slots.remove(i % live_slots.len());
                    prop_assert!(page.delete(slot));
                    model.remove(&slot);
                }
                PageOp::Update(i, bytes) => {
                    if live_slots.is_empty() { continue; }
                    let slot = live_slots[i % live_slots.len()];
                    if page.update(slot, &bytes) {
                        model.insert(slot, bytes);
                    } else {
                        // Failed update must be a no-op.
                        prop_assert_eq!(page.get(slot).unwrap(), &model[&slot][..]);
                    }
                }
            }
            // Full-state agreement after every op.
            prop_assert_eq!(page.live_count(), model.len());
            for (slot, bytes) in &model {
                prop_assert_eq!(page.get(*slot), Some(&bytes[..]));
            }
        }
        // The read-only view agrees with the editor.
        let view = PageView::new(&buf);
        let via_view: HashMap<SlotId, Vec<u8>> =
            view.iter().map(|(s, b)| (s, b.to_vec())).collect();
        prop_assert_eq!(via_view, model);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Decoding never panics on arbitrary bytes — corrupt page data must
    /// surface as `StorageError::Corrupt`, not a crash.
    #[test]
    fn tuple_decode_is_panic_free(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        use adaptive_index_buffer::storage::{Tuple, Value};
        let _ = Tuple::from_bytes(&bytes);
        let _ = Tuple::read_column(&bytes, 0);
        let _ = Tuple::read_column(&bytes, 3);
        let mut pos = 0;
        let _ = Value::decode(&bytes, &mut pos);
        let mut pos = 0;
        let _ = Value::skip(&bytes, &mut pos);
    }

    /// Round-trips survive arbitrary valid tuples.
    #[test]
    fn tuple_roundtrip_arbitrary(values in prop::collection::vec(
        prop_oneof![
            Just(adaptive_index_buffer::storage::Value::Null),
            any::<i64>().prop_map(adaptive_index_buffer::storage::Value::Int),
            ".{0,40}".prop_map(adaptive_index_buffer::storage::Value::from),
        ],
        0..12,
    )) {
        use adaptive_index_buffer::storage::Tuple;
        let t = Tuple::new(values);
        let bytes = t.to_bytes();
        prop_assert_eq!(bytes.len(), t.encoded_len());
        let back = Tuple::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&back, &t);
        for (i, v) in t.values().iter().enumerate() {
            prop_assert_eq!(&Tuple::read_column(&bytes, i).unwrap(), v);
        }
    }
}

#[derive(Debug, Clone)]
enum HeapOp {
    Insert(Vec<u8>),
    Delete(usize),
    Update(usize, Vec<u8>),
    Get(usize),
}

fn heap_op() -> impl Strategy<Value = HeapOp> {
    prop_oneof![
        4 => prop::collection::vec(any::<u8>(), 1..2000).prop_map(HeapOp::Insert),
        2 => (0usize..1000).prop_map(HeapOp::Delete),
        2 => ((0usize..1000), prop::collection::vec(any::<u8>(), 1..2000))
            .prop_map(|(i, b)| HeapOp::Update(i, b)),
        1 => (0usize..1000).prop_map(HeapOp::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The heap file behaves like a map from rids to byte strings across
    /// page spills, moves, and a tiny buffer pool forcing evictions.
    #[test]
    fn heap_matches_model(ops in prop::collection::vec(heap_op(), 1..150)) {
        let pool = BufferPool::new(
            DiskManager::new(CostModel::free()),
            BufferPoolConfig::lru(3),
        );
        let heap = HeapFile::new(pool);
        let mut model: HashMap<Rid, Vec<u8>> = HashMap::new();
        let mut rids: Vec<Rid> = Vec::new();

        for op in ops {
            match op {
                HeapOp::Insert(bytes) => {
                    let rid = heap.insert(&bytes).unwrap();
                    prop_assert!(!model.contains_key(&rid));
                    model.insert(rid, bytes);
                    rids.push(rid);
                }
                HeapOp::Delete(i) => {
                    if rids.is_empty() { continue; }
                    let rid = rids.remove(i % rids.len());
                    heap.delete(rid).unwrap();
                    model.remove(&rid);
                }
                HeapOp::Update(i, bytes) => {
                    if rids.is_empty() { continue; }
                    let idx = i % rids.len();
                    let old = rids[idx];
                    let new = heap.update(old, &bytes).unwrap();
                    model.remove(&old);
                    prop_assert!(!model.contains_key(&new), "moved rid collides");
                    model.insert(new, bytes);
                    rids[idx] = new;
                }
                HeapOp::Get(i) => {
                    if rids.is_empty() { continue; }
                    let rid = rids[i % rids.len()];
                    prop_assert_eq!(heap.get(rid).unwrap(), model[&rid].clone());
                }
            }
            prop_assert_eq!(heap.live_tuples() as usize, model.len());
        }
        // Full scan yields exactly the model.
        let mut scanned: HashMap<Rid, Vec<u8>> = HashMap::new();
        heap.scan_pages(|_| false, |rid, bytes| {
            scanned.insert(rid, bytes.to_vec());
        }).unwrap();
        prop_assert_eq!(scanned, model);
    }
}
