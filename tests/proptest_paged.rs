//! Property tests of the disk-resident B+-tree against a `BTreeSet` model,
//! under a deliberately tiny buffer pool so every operation contends for
//! frames.

use adaptive_index_buffer::index::paged::{PagedBTree, PagedKey};
use adaptive_index_buffer::storage::{BufferPool, BufferPoolConfig, CostModel, DiskManager};
use proptest::prelude::*;
use std::collections::BTreeSet;

#[derive(Debug, Clone)]
enum Op {
    Insert(i16, u8),
    Remove(i16, u8),
    Contains(i16, u8),
    Lookup(i16),
    Range(i16, i16),
}

fn op() -> impl Strategy<Value = Op> {
    let v = -50i16..50;
    prop_oneof![
        5 => (v.clone(), any::<u8>()).prop_map(|(k, s)| Op::Insert(k, s % 4)),
        2 => (v.clone(), any::<u8>()).prop_map(|(k, s)| Op::Remove(k, s % 4)),
        1 => (v.clone(), any::<u8>()).prop_map(|(k, s)| Op::Contains(k, s % 4)),
        1 => v.clone().prop_map(Op::Lookup),
        1 => (v.clone(), v).prop_map(|(a, b)| Op::Range(a.min(b), a.max(b))),
    ]
}

fn key(v: i16, s: u8) -> PagedKey {
    PagedKey {
        value: v as i64,
        page: u32::from(s),
        slot: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn paged_btree_matches_model(ops in prop::collection::vec(op(), 1..300)) {
        let pool = BufferPool::new(
            DiskManager::new(CostModel::free()),
            BufferPoolConfig::lru(4),
        );
        let mut tree = PagedBTree::create(pool).unwrap();
        let mut model: BTreeSet<PagedKey> = BTreeSet::new();
        for (step, op) in ops.into_iter().enumerate() {
            match op {
                Op::Insert(v, s) => {
                    let k = key(v, s);
                    prop_assert_eq!(tree.insert(k).unwrap(), model.insert(k), "insert {}", step);
                }
                Op::Remove(v, s) => {
                    let k = key(v, s);
                    prop_assert_eq!(tree.remove(k).unwrap(), model.remove(&k), "remove {}", step);
                }
                Op::Contains(v, s) => {
                    let k = key(v, s);
                    prop_assert_eq!(tree.contains(k).unwrap(), model.contains(&k), "contains {}", step);
                }
                Op::Lookup(v) => {
                    let got = tree.lookup(v as i64).unwrap();
                    let want: Vec<_> = model
                        .iter()
                        .filter(|k| k.value == v as i64)
                        .map(|k| k.rid())
                        .collect();
                    prop_assert_eq!(got, want, "lookup {}", step);
                }
                Op::Range(lo, hi) => {
                    let got = tree.range(lo as i64, hi as i64).unwrap();
                    let want: Vec<_> = model
                        .iter()
                        .filter(|k| (lo as i64..=hi as i64).contains(&k.value))
                        .map(|k| k.rid())
                        .collect();
                    prop_assert_eq!(got, want, "range {}", step);
                }
            }
            prop_assert_eq!(tree.len(), model.len());
        }
        tree.check_invariants();
    }

    /// Bulk loads big enough to force leaf and internal splits, then checks
    /// total order and exact membership.
    #[test]
    fn paged_btree_bulk_load(seed in 0u64..1000) {
        let pool = BufferPool::new(
            DiskManager::new(CostModel::free()),
            BufferPoolConfig::lru(16),
        );
        let mut tree = PagedBTree::create(pool).unwrap();
        let mut model = BTreeSet::new();
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        for _ in 0..3000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = PagedKey { value: (x % 4000) as i64, page: (x >> 32) as u32 % 8, slot: 0 };
            prop_assert_eq!(tree.insert(k).unwrap(), model.insert(k));
        }
        tree.check_invariants();
        let mut iterated = Vec::new();
        tree.for_each(&mut |k| iterated.push(k)).unwrap();
        let expected: Vec<PagedKey> = model.iter().copied().collect();
        prop_assert_eq!(iterated, expected);
    }
}
