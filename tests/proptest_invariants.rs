//! Shadow-model property test (`invariant-checks` feature only): arbitrary
//! sequences of DML, queries (driving indexing scans and Algorithm 2
//! partition displacement), online-tuner adaptation, coverage redefinition,
//! and index drop/recreate must keep the engine's incremental bookkeeping in
//! exact agreement with ground truth recomputed from the heap.
//!
//! The engine re-runs [`Database::verify_invariants`] after every mutation
//! when the feature is on, so any divergence fails the op that caused it —
//! the explicit call at the end of each case is the belt to that suspenders.
//!
//! Run with `cargo test --features invariant-checks --test proptest_invariants`.
#![cfg(feature = "invariant-checks")]

use adaptive_index_buffer::core::{BufferConfig, SpaceConfig};
use adaptive_index_buffer::engine::tuner::TunerConfig;
use adaptive_index_buffer::engine::{Database, EngineConfig, Query};
use adaptive_index_buffer::index::{Coverage, IndexBackend};
use adaptive_index_buffer::storage::{Column, CostModel, Rid, Schema, Tuple, Value};
use proptest::prelude::*;

const DOMAIN: i64 = 40;

#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64, u16),
    Delete(usize),
    Update(usize, i64, i64),
    /// Point query; column "a" misses its range coverage above the split,
    /// column "b" drives the tuner's add/evict adaptation.
    Query(u8, i64),
    /// Redefine column "a"'s range coverage wholesale (experiment 4).
    Redefine(i64, i64),
    /// Drop column "a"'s partial index and recreate it from scratch.
    DropRecreate(i64),
}

fn op() -> impl Strategy<Value = Op> {
    let val = 1..=DOMAIN;
    prop_oneof![
        3 => (val.clone(), val.clone(), 1u16..300).prop_map(|(a, b, n)| Op::Insert(a, b, n)),
        2 => (0usize..1000).prop_map(Op::Delete),
        2 => ((0usize..1000), val.clone(), val.clone()).prop_map(|(i, a, b)| Op::Update(i, a, b)),
        6 => ((0u8..2), val.clone()).prop_map(|(c, v)| Op::Query(c, v)),
        1 => (val.clone(), val.clone()).prop_map(|(lo, hi)| Op::Redefine(lo.min(hi), lo.max(hi))),
        1 => val.prop_map(Op::DropRecreate),
    ]
}

fn build(seed_rows: usize) -> (Database, Vec<Rid>) {
    let mut db = Database::new(EngineConfig {
        pool_frames: 8,
        cost_model: CostModel::free(),
        space: SpaceConfig {
            // Tight bound: indexing scans constantly displace partitions,
            // exercising the restore path against the shadow model.
            max_entries: Some(50),
            i_max: 4,
            seed: 7,
            ..Default::default()
        },
        ..Default::default()
    });
    db.create_table(
        "t",
        Schema::new(vec![Column::int("a"), Column::int("b"), Column::str("pad")]),
    )
    .unwrap();
    let mut rids = Vec::new();
    for i in 0..seed_rows {
        let t = Tuple::new(vec![
            Value::Int((i as i64 * 13) % DOMAIN + 1),
            Value::Int((i as i64 * 29) % DOMAIN + 1),
            Value::from("x".repeat(1 + (i * 37) % 200)),
        ]);
        rids.push(db.insert("t", &t).unwrap());
    }
    // Column "a": range-covered partial index with a small-partition buffer.
    db.create_partial_index(
        "t",
        "a",
        Coverage::IntRange { lo: 1, hi: 12 },
        IndexBackend::BTree,
        Some(BufferConfig {
            partition_pages: 2,
            ..Default::default()
        }),
    )
    .unwrap();
    // Column "b": tuned set coverage — queries mutate coverage value by
    // value through cover_tuple/uncover_tuple, the adaptation surface.
    db.create_partial_index(
        "t",
        "b",
        Coverage::empty_set(),
        IndexBackend::BTree,
        Some(BufferConfig {
            partition_pages: 2,
            ..Default::default()
        }),
    )
    .unwrap();
    db.attach_tuner(
        "t",
        "b",
        TunerConfig {
            window: 8,
            threshold: 2,
            capacity: 3,
        },
    )
    .unwrap();
    (db, rids)
}

fn truth(db: &Database, col: &str, value: i64) -> Vec<Rid> {
    let table = db.table("t").unwrap();
    let ci = table.schema().column_index(col).unwrap();
    let mut rids: Vec<Rid> = table
        .scan_all()
        .unwrap()
        .into_iter()
        .filter(|(_, t)| t.get(ci).unwrap().as_int() == Some(value))
        .map(|(rid, _)| rid)
        .collect();
    rids.sort_unstable();
    rids
}

fn run_case(mut db: Database, mut rids: Vec<Rid>, ops: Vec<Op>) {
    for op in ops {
        match op {
            Op::Insert(a, b, n) => {
                let t = Tuple::new(vec![
                    Value::Int(a),
                    Value::Int(b),
                    Value::from("y".repeat(n as usize)),
                ]);
                rids.push(db.insert("t", &t).unwrap());
            }
            Op::Delete(i) => {
                if rids.is_empty() {
                    continue;
                }
                let rid = rids.remove(i % rids.len());
                db.delete("t", rid).unwrap();
            }
            Op::Update(i, a, b) => {
                if rids.is_empty() {
                    continue;
                }
                let idx = i % rids.len();
                let old = db.fetch("t", rids[idx]).unwrap();
                let pad = old.get(2).unwrap().clone();
                let t = Tuple::new(vec![Value::Int(a), Value::Int(b), pad]);
                rids[idx] = db.update("t", rids[idx], &t).unwrap();
            }
            Op::Query(c, v) => {
                let col = if c == 0 { "a" } else { "b" };
                let r = db.execute(&Query::point("t", col, v)).unwrap().result;
                let mut got = r.rids.clone();
                got.sort_unstable();
                assert_eq!(got, truth(&db, col, v), "query {col}={v}");
            }
            Op::Redefine(lo, hi) => {
                db.redefine_coverage("t", "a", Coverage::IntRange { lo, hi })
                    .unwrap();
            }
            Op::DropRecreate(hi) => {
                db.drop_partial_index("t", "a").unwrap();
                db.create_partial_index(
                    "t",
                    "a",
                    Coverage::IntRange { lo: 1, hi },
                    IndexBackend::BTree,
                    Some(BufferConfig {
                        partition_pages: 2,
                        ..Default::default()
                    }),
                )
                .unwrap();
            }
        }
    }
    // Belt to the per-op suspenders: one explicit full shadow-model pass.
    db.verify_invariants().unwrap();
}

proptest! {
    // Every op re-runs the full shadow model inside the engine, so keep the
    // case count modest — depth of interleaving matters more than breadth.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn shadow_model_agrees_under_adaptation_and_displacement(
        ops in prop::collection::vec(op(), 1..48),
    ) {
        let (db, rids) = build(120);
        run_case(db, rids, ops);
    }
}
