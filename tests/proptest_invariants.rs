//! Shadow-model property test (`invariant-checks` feature only): arbitrary
//! sequences of DML, queries (driving indexing scans and Algorithm 2
//! partition displacement), online-tuner adaptation, coverage redefinition,
//! and index drop/recreate must keep the engine's incremental bookkeeping in
//! exact agreement with ground truth recomputed from the heap.
//!
//! The engine re-runs [`Database::verify_invariants`] after every mutation
//! when the feature is on, so any divergence fails the op that caused it —
//! the explicit call at the end of each case is the belt to that suspenders.
//!
//! Run with `cargo test --features invariant-checks --test proptest_invariants`.
#![cfg(feature = "invariant-checks")]

use adaptive_index_buffer::core::{BufferConfig, SpaceConfig};
use adaptive_index_buffer::engine::tuner::TunerConfig;
use adaptive_index_buffer::engine::{Database, EngineConfig, Query};
use adaptive_index_buffer::index::{Coverage, IndexBackend};
use adaptive_index_buffer::storage::{
    Column, CostModel, Rid, Schema, Tuple, Value, DEFAULT_ENTRY_FOOTPRINT,
};
use proptest::prelude::*;

const DOMAIN: i64 = 40;

#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64, u16),
    Delete(usize),
    Update(usize, i64, i64),
    /// Point query; column "a" misses its range coverage above the split,
    /// column "b" drives the tuner's add/evict adaptation.
    Query(u8, i64),
    /// Redefine column "a"'s range coverage wholesale (experiment 4).
    Redefine(i64, i64),
    /// Drop column "a"'s partial index and recreate it from scratch.
    DropRecreate(i64),
}

fn op() -> impl Strategy<Value = Op> {
    let val = 1..=DOMAIN;
    prop_oneof![
        3 => (val.clone(), val.clone(), 1u16..300).prop_map(|(a, b, n)| Op::Insert(a, b, n)),
        2 => (0usize..1000).prop_map(Op::Delete),
        2 => ((0usize..1000), val.clone(), val.clone()).prop_map(|(i, a, b)| Op::Update(i, a, b)),
        6 => ((0u8..2), val.clone()).prop_map(|(c, v)| Op::Query(c, v)),
        1 => (val.clone(), val.clone()).prop_map(|(lo, hi)| Op::Redefine(lo.min(hi), lo.max(hi))),
        1 => val.prop_map(Op::DropRecreate),
    ]
}

fn build(seed_rows: usize) -> (Database, Vec<Rid>) {
    let mut db = Database::new(EngineConfig {
        pool_frames: 8,
        cost_model: CostModel::free(),
        space: SpaceConfig {
            // Tight bound: indexing scans constantly displace partitions,
            // exercising the restore path against the shadow model.
            max_bytes: Some(50 * DEFAULT_ENTRY_FOOTPRINT),
            i_max: 4,
            seed: 7,
            ..Default::default()
        },
        ..Default::default()
    });
    db.create_table(
        "t",
        Schema::new(vec![Column::int("a"), Column::int("b"), Column::str("pad")]),
    )
    .unwrap();
    let mut rids = Vec::new();
    for i in 0..seed_rows {
        let t = Tuple::new(vec![
            Value::Int((i as i64 * 13) % DOMAIN + 1),
            Value::Int((i as i64 * 29) % DOMAIN + 1),
            Value::from("x".repeat(1 + (i * 37) % 200)),
        ]);
        rids.push(db.insert("t", &t).unwrap());
    }
    // Column "a": range-covered partial index with a small-partition buffer.
    db.create_partial_index(
        "t",
        "a",
        Coverage::IntRange { lo: 1, hi: 12 },
        IndexBackend::BTree,
        Some(BufferConfig {
            partition_pages: 2,
            ..Default::default()
        }),
    )
    .unwrap();
    // Column "b": tuned set coverage — queries mutate coverage value by
    // value through cover_tuple/uncover_tuple, the adaptation surface.
    db.create_partial_index(
        "t",
        "b",
        Coverage::empty_set(),
        IndexBackend::BTree,
        Some(BufferConfig {
            partition_pages: 2,
            ..Default::default()
        }),
    )
    .unwrap();
    db.attach_tuner(
        "t",
        "b",
        TunerConfig {
            window: 8,
            threshold: 2,
            capacity: 3,
        },
    )
    .unwrap();
    (db, rids)
}

fn truth(db: &Database, col: &str, value: i64) -> Vec<Rid> {
    let table = db.table("t").unwrap();
    let ci = table.schema().column_index(col).unwrap();
    let mut rids: Vec<Rid> = table
        .scan_all()
        .unwrap()
        .into_iter()
        .filter(|(_, t)| t.get(ci).unwrap().as_int() == Some(value))
        .map(|(rid, _)| rid)
        .collect();
    rids.sort_unstable();
    rids
}

fn run_case(mut db: Database, mut rids: Vec<Rid>, ops: Vec<Op>) {
    for op in ops {
        match op {
            Op::Insert(a, b, n) => {
                let t = Tuple::new(vec![
                    Value::Int(a),
                    Value::Int(b),
                    Value::from("y".repeat(n as usize)),
                ]);
                rids.push(db.insert("t", &t).unwrap());
            }
            Op::Delete(i) => {
                if rids.is_empty() {
                    continue;
                }
                let rid = rids.remove(i % rids.len());
                db.delete("t", rid).unwrap();
            }
            Op::Update(i, a, b) => {
                if rids.is_empty() {
                    continue;
                }
                let idx = i % rids.len();
                let old = db.fetch("t", rids[idx]).unwrap();
                let pad = old.get(2).unwrap().clone();
                let t = Tuple::new(vec![Value::Int(a), Value::Int(b), pad]);
                rids[idx] = db.update("t", rids[idx], &t).unwrap();
            }
            Op::Query(c, v) => {
                let col = if c == 0 { "a" } else { "b" };
                let r = db.execute(&Query::point("t", col, v)).unwrap().result;
                let mut got = r.rids.clone();
                got.sort_unstable();
                assert_eq!(got, truth(&db, col, v), "query {col}={v}");
            }
            Op::Redefine(lo, hi) => {
                db.redefine_coverage("t", "a", Coverage::IntRange { lo, hi })
                    .unwrap();
            }
            Op::DropRecreate(hi) => {
                db.drop_partial_index("t", "a").unwrap();
                db.create_partial_index(
                    "t",
                    "a",
                    Coverage::IntRange { lo: 1, hi },
                    IndexBackend::BTree,
                    Some(BufferConfig {
                        partition_pages: 2,
                        ..Default::default()
                    }),
                )
                .unwrap();
            }
        }
    }
    // Belt to the per-op suspenders: one explicit full shadow-model pass.
    db.verify_invariants().unwrap();
}

proptest! {
    // Every op re-runs the full shadow model inside the engine, so keep the
    // case count modest — depth of interleaving matters more than breadth.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn shadow_model_agrees_under_adaptation_and_displacement(
        ops in prop::collection::vec(op(), 1..48),
    ) {
        let (db, rids) = build(120);
        run_case(db, rids, ops);
    }
}

// ---------------------------------------------------------------------------
// Scan fast path: compiled predicates and the maintained skip bitset
// ---------------------------------------------------------------------------

use adaptive_index_buffer::core::{CompiledPredicate, PageCounters, Predicate};

/// Every [`Value`] variant, including the empty string and integer extremes
/// the little-endian encoding makes interesting.
fn any_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        1 => Just(Value::Null),
        2 => prop_oneof![Just(i64::MIN), Just(-1i64), Just(0), Just(i64::MAX)]
            .prop_map(Value::Int),
        3 => any::<i64>().prop_map(Value::Int),
        3 => ".{0,12}".prop_map(Value::from),
    ]
}

/// Counter maintenance as the engine drives it: Table I DML
/// (increment/decrement), Algorithm 1 indexing (`set_zero`), Algorithm 2
/// displacement (`restore`), and heap growth (`ensure_page`).
#[derive(Debug, Clone)]
enum CounterOp {
    Increment(u32),
    Decrement(u32),
    SetZero(u32),
    Restore(u32, u32),
    Ensure(u32),
}

fn counter_op() -> impl Strategy<Value = CounterOp> {
    // Pages up to 130 span three bitset words, so word-boundary bits and the
    // masked tail both get exercised.
    let page = 0u32..130;
    prop_oneof![
        4 => page.clone().prop_map(CounterOp::Increment),
        3 => page.clone().prop_map(CounterOp::Decrement),
        2 => page.clone().prop_map(CounterOp::SetZero),
        2 => (page.clone(), 0u32..4).prop_map(|(p, n)| CounterOp::Restore(p, n)),
        1 => page.prop_map(CounterOp::Ensure),
    ]
}

proptest! {
    /// The zero-copy path and the interpreted path must agree on every
    /// value variant: [`CompiledPredicate`] evaluated on the raw encoded
    /// column bytes ⇔ [`Predicate::matches`] on the decoded [`Value`].
    /// Referenced by the `aib-core` scan module docs.
    #[test]
    fn compiled_predicate_matches_decoded_values(
        v in any_value(),
        probe in any_value(),
        lo in any_value(),
        hi in any_value(),
        pad in any_value(),
    ) {
        let tuple = Tuple::new(vec![pad, v.clone()]);
        let bytes = tuple.to_bytes();
        // Random probes mostly miss; the self-referential predicates pin the
        // must-match side of the equivalence.
        let preds = [
            Predicate::Equals(probe),
            Predicate::Equals(v.clone()),
            Predicate::Between(lo, hi),
            Predicate::Between(v.clone(), v.clone()),
        ];
        for pred in preds {
            let col = Tuple::read_column_raw(&bytes, 1).unwrap();
            let compiled = CompiledPredicate::compile(&pred);
            prop_assert_eq!(
                compiled.matches(&col),
                pred.matches(&v),
                "{:?} on {:?}", pred, v
            );
            // The in-place window compare (the production page-sweep path)
            // must agree with the decoded semantics on well-formed tuples.
            prop_assert_eq!(
                compiled.matches_tuple(&bytes, 1).unwrap(),
                pred.matches(&v),
                "window path: {:?} on {:?}", pred, v
            );
        }
    }

    /// The maintained [`SkipBitset`] must mirror `C[p] == 0` exactly under
    /// arbitrary interleavings of DML maintenance, indexing, displacement
    /// restore, and growth — checked against an independent shadow `Vec<u32>`
    /// after every op, plus the snapshot/runs surface the scans consume.
    #[test]
    fn skip_bitset_mirrors_counters_under_random_maintenance(
        ops in prop::collection::vec(counter_op(), 1..120),
        snapshot_len in 0u32..160,
    ) {
        let mut counters = PageCounters::new();
        let mut shadow: Vec<u32> = Vec::new();
        let track = |shadow: &mut Vec<u32>, p: u32| {
            if shadow.len() <= p as usize {
                shadow.resize(p as usize + 1, 0);
            }
        };
        for op in ops {
            match op {
                CounterOp::Increment(p) => {
                    counters.increment(p);
                    track(&mut shadow, p);
                    shadow[p as usize] += 1;
                }
                CounterOp::Decrement(p) => {
                    let r = counters.decrement(p);
                    track(&mut shadow, p);
                    if shadow[p as usize] == 0 {
                        prop_assert!(r.is_err(), "underflow on C[{}] must error", p);
                    } else {
                        prop_assert!(r.is_ok());
                        shadow[p as usize] -= 1;
                    }
                }
                CounterOp::SetZero(p) => {
                    track(&mut shadow, p);
                    let prev = counters.set_zero(p);
                    prop_assert_eq!(prev, shadow[p as usize]);
                    shadow[p as usize] = 0;
                }
                CounterOp::Restore(p, n) => {
                    counters.restore(p, n);
                    track(&mut shadow, p);
                    shadow[p as usize] = n;
                }
                CounterOp::Ensure(p) => {
                    counters.ensure_page(p);
                    track(&mut shadow, p);
                }
            }
            let chk = counters.check_bitset();
            prop_assert!(chk.is_ok(), "bitset diverged: {:?}", chk);
        }
        // Per-page skippability, including untracked pages reading clear.
        for p in 0..shadow.len() as u32 + 8 {
            let expect = (p as usize) < shadow.len() && shadow[p as usize] == 0;
            prop_assert_eq!(counters.is_fully_indexed(p), expect);
        }
        // The per-scan snapshot: tracked zero-counter pages set, everything
        // else (including pages past the tracked range) clear.
        let snap = counters.skip_snapshot(snapshot_len);
        prop_assert_eq!(snap.len(), snapshot_len);
        for p in 0..snapshot_len {
            let expect = (p as usize) < shadow.len() && shadow[p as usize] == 0;
            prop_assert_eq!(snap.contains(p), expect, "snapshot bit {}", p);
        }
        // Runs alternate, tile the range exactly, and agree bit-for-bit.
        let mut at = 0u32;
        let mut last: Option<bool> = None;
        for (extent, skippable) in snap.runs(0..snapshot_len) {
            prop_assert_eq!(extent.start, at);
            prop_assert!(extent.start < extent.end);
            prop_assert!(last != Some(skippable), "runs must alternate");
            for p in extent.clone() {
                prop_assert_eq!(snap.contains(p), skippable);
            }
            at = extent.end;
            last = Some(skippable);
        }
        prop_assert_eq!(at, snapshot_len, "runs must tile the range");
        prop_assert_eq!(
            snap.count(),
            (0..snapshot_len).filter(|&p| snap.contains(p)).count() as u32
        );
    }
}
