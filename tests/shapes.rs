//! Shape tests: the paper's headline experimental claims, asserted at a
//! reduced scale so they run in CI. These are the same computations the
//! `aib-bench` figure harnesses print, frozen into assertions — if a code
//! change breaks a published shape, a test fails, not just a plot.

use adaptive_index_buffer::core::{BufferConfig, SpaceConfig};
use adaptive_index_buffer::engine::{Database, EngineConfig, Query, WorkloadRecorder};
use adaptive_index_buffer::index::{Coverage, IndexBackend};
use adaptive_index_buffer::sim;
use adaptive_index_buffer::storage::{CostModel, DEFAULT_ENTRY_FOOTPRINT};
use adaptive_index_buffer::workload::{
    experiment1_queries, experiment3_queries, TableSpec, SWITCH_AT,
};

const ROWS: u64 = 30_000;

fn engine(space: SpaceConfig) -> EngineConfig {
    EngineConfig {
        pool_frames: 64, // ~1/17th of the ~1,080-page table: scans are disk-bound
        cost_model: CostModel::default(),
        space,
        ..Default::default()
    }
}

fn build(
    spec: &TableSpec,
    space: SpaceConfig,
    buffer: Option<BufferConfig>,
    cols: &[&str],
) -> Database {
    let db = Database::new(engine(space));
    db.create_table("eval", spec.schema()).unwrap();
    for t in spec.tuples() {
        db.insert("eval", &t).unwrap();
    }
    let (lo, hi) = spec.covered_range();
    for col in cols {
        db.create_partial_index(
            "eval",
            col,
            Coverage::IntRange { lo, hi },
            IndexBackend::BTree,
            buffer,
        )
        .unwrap();
    }
    db
}

fn run(
    db: &mut Database,
    queries: &[adaptive_index_buffer::workload::QuerySpec],
) -> WorkloadRecorder {
    let mut rec = WorkloadRecorder::new();
    for q in queries {
        rec.record(
            &db.execute(&Query::point("eval", &q.column, q.value))
                .unwrap(),
        );
    }
    rec
}

fn mean_sim(rec: &WorkloadRecorder, lo: usize, hi: usize) -> f64 {
    let r = &rec.records()[lo..hi.min(rec.len())];
    r.iter().map(|m| m.simulated_us()).sum::<u64>() as f64 / r.len() as f64
}

/// Fig. 6 shape: buffered query cost collapses below the plain-scan level
/// and buffer entries plateau at the uncovered-tuple count.
#[test]
fn fig6_shape_buffer_beats_scan_and_reaches_index_level() {
    let spec = TableSpec::scaled(ROWS, 0xDA7A);
    let queries = experiment1_queries(&spec, 40, 61);
    let i_max = (5_000 * ROWS / 500_000) as u32;
    let space = SpaceConfig {
        max_bytes: None,
        i_max,
        seed: 6,
        ..Default::default()
    };

    let mut buffered = build(&spec, space, Some(BufferConfig::default()), &["A"]);
    let buf_rec = run(&mut buffered, &queries);
    let mut plain = build(&spec, space, None, &["A"]);
    let plain_rec = run(&mut plain, &queries);

    let scan_level = mean_sim(&plain_rec, 10, 40);
    assert!(scan_level > 0.0, "plain scans must cost I/O at this scale");
    // Early: buffered ≤ scan (same pages read, fewer every round).
    assert!(mean_sim(&buf_rec, 0, 2) <= scan_level * 1.05);
    // Late: buffered cost collapses (paper: reaches index-scan level).
    let late = mean_sim(&buf_rec, 30, 40);
    assert!(
        late < scan_level * 0.02,
        "late buffered cost {late} vs scan level {scan_level}"
    );
    // Entries plateau at the uncovered count (90% of rows).
    let final_entries = buf_rec.records().last().unwrap().buffer_entries[0] as f64;
    let uncovered = ROWS as f64 * 0.9;
    assert!(
        (final_entries - uncovered).abs() / uncovered < 0.02,
        "final entries {final_entries} vs expected {uncovered}"
    );
}

/// Fig. 7 shape: larger I^MAX converges faster; tighter L leaves a higher
/// steady-state cost floor.
#[test]
fn fig7_shape_imax_and_space_bound() {
    let spec = TableSpec::scaled(ROWS, 0xDA7A);
    let queries = experiment1_queries(&spec, 60, 72);

    let early_cost = |i_max_paper: u64| {
        let i_max = (i_max_paper * ROWS / 500_000).max(1) as u32;
        let space = SpaceConfig {
            max_bytes: None,
            i_max,
            seed: 7,
            ..Default::default()
        };
        let mut db = build(&spec, space, Some(BufferConfig::default()), &["A"]);
        let rec = run(&mut db, &queries);
        mean_sim(&rec, 2, 15)
    };
    let slow = early_cost(500);
    let medium = early_cost(1_000);
    let fast = early_cost(5_000);
    assert!(
        slow > medium && medium > fast,
        "I^MAX ordering: {slow} > {medium} > {fast}"
    );

    let floor = |l_paper: Option<u64>| {
        let max_bytes = l_paper.map(|l| (l * ROWS / 500_000) as usize * DEFAULT_ENTRY_FOOTPRINT);
        let i_max = (5_000 * ROWS / 500_000) as u32;
        let space = SpaceConfig {
            max_bytes,
            i_max,
            seed: 7,
            ..Default::default()
        };
        let mut db = build(&spec, space, Some(BufferConfig::default()), &["A"]);
        let rec = run(&mut db, &queries);
        mean_sim(&rec, 40, 60)
    };
    let tight = floor(Some(100_000));
    let loose = floor(Some(450_000));
    let unlimited = floor(None);
    assert!(
        tight > loose,
        "tighter L -> higher floor: {tight} vs {loose}"
    );
    assert!(unlimited <= loose);
}

/// Fig. 8 shape: bounded space flips from A to C after the mix switch.
/// Run at 100 k rows — the racy equilibrium between the two busiest buffers
/// is noisy below that (see EXPERIMENTS.md, Fig. 8 deviation note); the
/// robust published claims are asserted here.
#[test]
fn fig8_shape_allocation_flips_with_the_mix() {
    let rows: u64 = 100_000;
    let spec = TableSpec::scaled(rows, 0xDA7A);
    let queries = experiment3_queries(&spec, 200, 83);
    let l = (800_000 * rows / 500_000) as usize;
    let i_max = (5_000 * rows / 500_000) as u32;
    let p = (10_000 * rows / 500_000) as u32;
    let space = SpaceConfig {
        max_bytes: Some(l * DEFAULT_ENTRY_FOOTPRINT),
        i_max,
        seed: 8,
        ..Default::default()
    };
    let buffer = BufferConfig {
        partition_pages: p,
        ..Default::default()
    };
    let mut db = Database::new(EngineConfig {
        pool_frames: 200,
        cost_model: CostModel::default(),
        space,
        ..Default::default()
    });
    db.create_table("eval", spec.schema()).unwrap();
    for t in spec.tuples() {
        db.insert("eval", &t).unwrap();
    }
    let (lo, hi) = spec.covered_range();
    for col in ["A", "B", "C"] {
        db.create_partial_index(
            "eval",
            col,
            Coverage::IntRange { lo, hi },
            IndexBackend::BTree,
            Some(buffer),
        )
        .unwrap();
    }
    let rec = run(&mut db, &queries);

    let p1 = &rec.records()[SWITCH_AT - 1].buffer_entries;
    assert!(
        p1[0] * 2 > l,
        "period 1: A holds more than half the space: {p1:?} of {l}"
    );
    assert!(
        p1[0] > 10 * p1[2].max(1),
        "period 1: C is sporadic next to A: {p1:?}"
    );
    let p2 = &rec.records().last().unwrap().buffer_entries;
    assert!(p2[2] > p2[0], "period 2: C overtakes A: {p2:?}");
    assert!(
        p2[2] * 2 > l,
        "period 2: C holds roughly half the space or more: {p2:?} of {l}"
    );
}

/// Fig. 1 shape (simulation): hit rate collapses during the shift and the
/// indexed range lags the queried range.
#[test]
fn fig1_shape_control_loop_delay() {
    let config = sim::ControlLoopConfig::default();
    let result = sim::run_control_loop(&config);
    let warm = result.hit_rate(100, 200);
    let during = result.hit_rate(250, 320);
    let late = result.hit_rate(430, 500);
    assert!(
        warm > 0.4 && late > 0.4,
        "adapted phases: warm {warm}, late {late}"
    );
    assert!(
        during < warm - 0.15,
        "collapse during shift: {during} < {warm}"
    );
}

/// Fig. 3 shape (simulation): <5% fully indexed pages at correlation 0.8
/// with >=10 tuples per page and 10% coverage.
#[test]
fn fig3_shape_share_collapses_with_decorrelation() {
    let scenario = sim::ClusteringScenario {
        tuples: 20_000,
        per_page: 10,
        coverage: 0.1,
    };
    let points = sim::sweep(&scenario, 40, 2);
    assert!(
        (points[0].fully_indexed_share - 0.1).abs() < 0.02,
        "share at corr 1 = coverage"
    );
    let at08 = sim::share_near_correlation(&points, 0.8).unwrap();
    assert!(
        at08.fully_indexed_share < 0.05,
        "paper's <5% claim: {}",
        at08.fully_indexed_share
    );
}
