//! Acceptance test for the parallel indexing-scan executor: the same
//! workload run with `scan_threads = 1` and `scan_threads = 4` must be
//! observationally identical — result sets, final page counters, and
//! Index Buffer contents (the sequential-equivalence guarantee).

use adaptive_index_buffer::core::{BufferConfig, SpaceConfig};
use adaptive_index_buffer::engine::{AccessPath, Database, EngineConfig, Query};
use adaptive_index_buffer::index::{Coverage, IndexBackend};
use adaptive_index_buffer::storage::{
    Column, CostModel, Rid, Schema, Tuple, Value, DEFAULT_ENTRY_FOOTPRINT,
};

const ROWS: i64 = 6_000;
const DOMAIN: i64 = 600;
const COVERED_HI: i64 = 150;

fn build_db(scan_threads: usize) -> (Database, Vec<Rid>) {
    let db = Database::new(EngineConfig {
        pool_frames: 2048,
        cost_model: CostModel::free(),
        space: SpaceConfig {
            max_bytes: Some(2_500 * DEFAULT_ENTRY_FOOTPRINT),
            i_max: 60,
            seed: 11,
            ..Default::default()
        },
        scan_threads,
        ..Default::default()
    });
    db.create_table("t", Schema::new(vec![Column::int("k"), Column::str("pad")]))
        .unwrap();
    let mut rids = Vec::new();
    for i in 0..ROWS {
        let t = Tuple::new(vec![
            Value::Int((i * 17) % DOMAIN),
            Value::from("x".repeat(100 + (i as usize * 7) % 60)),
        ]);
        rids.push(db.insert("t", &t).unwrap());
    }
    db.create_partial_index(
        "t",
        "k",
        Coverage::IntRange {
            lo: 0,
            hi: COVERED_HI,
        },
        IndexBackend::BTree,
        Some(BufferConfig {
            partition_pages: 16,
            ..Default::default()
        }),
    )
    .unwrap();
    (db, rids)
}

/// The shared workload: point and range queries over covered and uncovered
/// values, with DML interleaved so maintenance runs against a buffer that
/// both executors must keep in the same state.
fn workload() -> Vec<Query> {
    let mut queries = Vec::new();
    for i in 0..40i64 {
        queries.push(Query::on("t", "k").eq((i * 41) % DOMAIN));
        if i % 5 == 0 {
            let lo = (i * 23) % DOMAIN;
            queries.push(Query::on("t", "k").between(lo, lo + 37));
        }
    }
    queries
}

fn counter_vector(db: &Database) -> Vec<u32> {
    let bid = db.buffer_id("t", "k").unwrap();
    let space = db.space_shard(bid);
    let counters = space.counters(bid);
    (0..counters.num_pages()).map(|p| counters.get(p)).collect()
}

#[test]
fn four_threads_match_one_thread_exactly() {
    let (seq, seq_rids) = build_db(1);
    let (par, par_rids) = build_db(4);
    assert_eq!(
        seq_rids, par_rids,
        "identical builds place rows identically"
    );
    assert!(
        seq.table("t").unwrap().num_pages() >= 64,
        "table must be big enough that planned_scan_threads(pages, 4) == 4, got {} pages",
        seq.table("t").unwrap().num_pages()
    );

    let mut saw_parallel_scan = false;
    for (i, q) in workload().iter().enumerate() {
        // Interleave identical DML on both databases every few queries.
        if i % 4 == 1 {
            let rid = seq_rids[(i * 131) % seq_rids.len()];
            let bump = Tuple::new(vec![
                Value::Int((i as i64 * 59) % DOMAIN),
                Value::from("y".repeat(100 + (i * 13) % 60)),
            ]);
            assert_eq!(
                seq.update("t", rid, &bump).unwrap(),
                par.update("t", rid, &bump).unwrap(),
                "query {i}: DML placement must agree"
            );
        }

        let s = seq.execute(q).unwrap();
        let p = par.execute(q).unwrap();
        // Stronger than the sorted comparison: the merged parallel result
        // must be the sequential result verbatim.
        assert_eq!(s.result.rids, p.result.rids, "query {i}: raw rid order");
        let mut s_sorted = s.result.rids.clone();
        let mut p_sorted = p.result.rids.clone();
        s_sorted.sort_unstable();
        p_sorted.sort_unstable();
        assert_eq!(s_sorted, p_sorted, "query {i}: sorted rids");
        assert_eq!(s.result.path, p.result.path, "query {i}: access path");
        assert_eq!(
            s.metrics
                .scan
                .as_ref()
                .map(|st| (st.pages_read, st.pages_skipped, st.entries_added)),
            p.metrics
                .scan
                .as_ref()
                .map(|st| (st.pages_read, st.pages_skipped, st.entries_added)),
            "query {i}: merged scan stats"
        );
        assert_eq!(s.metrics.scan_threads, 1);
        if p.result.path == AccessPath::BufferedScan {
            assert_eq!(p.metrics.scan_threads, 4, "query {i}: parallelism engaged");
            saw_parallel_scan = true;
        }
    }
    assert!(
        saw_parallel_scan,
        "workload never hit the parallel scan path"
    );

    // Final state: identical counter vectors and buffer contents.
    assert_eq!(counter_vector(&seq), counter_vector(&par), "page counters");
    let sbid = seq.buffer_id("t", "k").unwrap();
    let pbid = par.buffer_id("t", "k").unwrap();
    let seq_space = seq.space_shard(sbid);
    let par_space = par.space_shard(pbid);
    let sb = seq_space.buffer(sbid);
    let pb = par_space.buffer(pbid);
    assert_eq!(sb.num_entries(), pb.num_entries(), "buffer entry count");
    assert_eq!(sb.num_partitions(), pb.num_partitions(), "partition count");
    assert_eq!(
        sb.num_buffered_pages(),
        pb.num_buffered_pages(),
        "buffered page count"
    );
    seq.check_space_invariants();
    par.check_space_invariants();
}

#[test]
fn thread_counts_beyond_the_table_still_agree() {
    // Requesting more threads than the chunk geometry supports must degrade
    // gracefully, never change results.
    let (seq, _) = build_db(1);
    let (par, _) = build_db(64);
    for q in workload().iter().take(12) {
        let s = seq.execute(q).unwrap();
        let p = par.execute(q).unwrap();
        assert_eq!(s.result.rids, p.result.rids);
    }
    assert_eq!(counter_vector(&seq), counter_vector(&par));
}
