//! The paper's explanatory figures as executable assertions.
//!
//! * **Fig. 2** — a partial index on the airport column covering U.S.
//!   airports: `ORD` hits the index; `FRA` needs a full scan.
//! * **Fig. 4** — the Index Buffer indexes the remaining unindexed tuples
//!   of passed pages, making them skippable for the next scan; the buffer
//!   scan contributes the extra `FRA` tuple.
//! * **Fig. 5** — multiple Index Buffers (different columns) live in one
//!   Index Buffer Space, partitioned into groups of `P` pages that are
//!   disjoint in the pages they reference.

use adaptive_index_buffer::core::{BufferConfig, IndexBuffer, IndexBufferSpace, SpaceConfig};
use adaptive_index_buffer::engine::{AccessPath, Database, EngineConfig, Query};
use adaptive_index_buffer::index::{Coverage, IndexBackend};
use adaptive_index_buffer::storage::{Column, Rid, Schema, Tuple, Value};
use std::collections::BTreeSet;

/// The flight table of Figures 2 and 4, with enough rows to span pages.
fn flights_db() -> Database {
    let db = Database::new(EngineConfig {
        pool_frames: 32,
        ..Default::default()
    });
    db.create_table(
        "flights",
        Schema::new(vec![Column::str("airport"), Column::str("info")]),
    )
    .unwrap();
    let airports = ["ORD", "JFK", "LAX", "FRA", "HEL"];
    for i in 0..2_000 {
        let ap = airports[i % airports.len()];
        db.insert(
            "flights",
            &Tuple::new(vec![
                Value::from(ap),
                Value::from(format!("flight {i} data")),
            ]),
        )
        .unwrap();
    }
    let coverage = Coverage::Set(
        ["ORD", "JFK", "LAX"]
            .iter()
            .map(|&a| Value::from(a))
            .collect::<BTreeSet<_>>(),
    );
    db.create_partial_index(
        "flights",
        "airport",
        coverage,
        IndexBackend::BTree,
        Some(BufferConfig::default()),
    )
    .unwrap();
    db
}

#[test]
fn fig2_partial_index_hit_and_miss() {
    let db = flights_db();
    // ORD is covered: the partial index answers it without a scan.
    let (r, m) = db
        .execute(&Query::point("flights", "airport", "ORD"))
        .unwrap()
        .into_parts();
    assert_eq!(r.path, AccessPath::PartialIndex);
    assert_eq!(r.count(), 400);
    assert!(m.scan.is_none());
    // FRA is not covered: "a query for Frankfurt Airport can only be
    // answered with a full scan of the table".
    let (r, m) = db
        .execute(&Query::point("flights", "airport", "FRA"))
        .unwrap()
        .into_parts();
    assert_eq!(r.path, AccessPath::BufferedScan);
    assert_eq!(r.count(), 400);
    let s = m.scan.unwrap();
    assert_eq!(
        s.pages_read,
        db.table("flights").unwrap().num_pages(),
        "no page is fully covered by the partial index alone (every page mixes airports)"
    );
}

#[test]
fn fig4_buffer_completes_pages_and_serves_the_extra_tuple() {
    let db = flights_db();
    // First FRA query builds the buffer (HEL and FRA tuples enter it).
    db.execute(&Query::point("flights", "airport", "FRA"))
        .unwrap();
    assert_eq!(
        db.space_shard(0).buffer(0).num_entries(),
        800,
        "the two uncovered airports' tuples are buffered"
    );
    // Second scan skips the completed pages and still finds every FRA
    // tuple — the buffer scan supplies them (Fig. 4's second FRA tuple).
    let (r, m) = db
        .execute(&Query::point("flights", "airport", "FRA"))
        .unwrap()
        .into_parts();
    let s = m.scan.unwrap();
    assert_eq!(s.pages_read, 0);
    assert_eq!(s.buffer_matches, 400);
    assert_eq!(r.count(), 400);
    // HEL also profits although it was never queried before.
    let (r, m) = db
        .execute(&Query::point("flights", "airport", "HEL"))
        .unwrap()
        .into_parts();
    assert_eq!(r.count(), 400);
    assert_eq!(m.scan.unwrap().pages_read, 0);
}

#[test]
fn fig5_partitions_group_p_pages_disjointly() {
    // Two Index Buffers in one space (columns X and A of Fig. 5), P = 2.
    let mut space = IndexBufferSpace::new(SpaceConfig::default());
    let cfg = BufferConfig {
        partition_pages: 2,
        ..Default::default()
    };
    let x = space.register("X", cfg, vec![2; 8]);
    let a = space.register("A", cfg, vec![2; 8]);

    // Index buffer X covers pages 1 and 7 in one partition — like Fig. 5's
    // partition 1 — then pages 2 and 4, then page 6 (incomplete).
    let feed = |buffer: &mut IndexBuffer, page: u32| {
        let tuples = (0..2).map(|s| {
            (
                Value::Int(i64::from(page) * 10 + s as i64),
                Rid::new(page, s),
            )
        });
        buffer.index_page(page, tuples);
    };
    for page in [1u32, 7, 2, 4, 6] {
        space.with_buffer_mut(x, |buffer, counters| {
            feed(buffer, page);
            counters.set_zero(page);
        });
    }
    for page in [0u32, 3] {
        space.with_buffer_mut(a, |buffer, counters| {
            feed(buffer, page);
            counters.set_zero(page);
        });
    }

    let bx = space.buffer(x);
    assert_eq!(bx.num_partitions(), 3, "X: {{1,7}}, {{2,4}}, {{6}}");
    assert_eq!(bx.num_buffered_pages(), 5);
    assert_eq!(space.buffer(a).num_partitions(), 1, "A: {{0,3}}");

    // Disjointness: each page belongs to exactly one partition.
    let mut seen = std::collections::HashSet::new();
    for pid in bx.partition_ids() {
        for (page, _) in bx.partition(pid).unwrap().pages() {
            assert!(
                seen.insert(page),
                "page {page} referenced by two partitions"
            );
        }
    }
    // Whole-partition discard: dropping the {1,7} group removes exactly its
    // two pages and restores their counters.
    let pid = bx
        .partition_ids()
        .find(|&p| bx.partition(p).unwrap().covers(1))
        .unwrap();
    space.with_buffer_mut(x, |buffer, counters| {
        let dropped = buffer.drop_partition(pid).unwrap();
        let mut pages: Vec<u32> = dropped.pages.iter().map(|&(p, _)| p).collect();
        pages.sort_unstable();
        assert_eq!(pages, vec![1, 7]);
        for &(page, restore) in &dropped.pages {
            counters.restore(page, restore);
            assert_eq!(counters.get(page), 2);
        }
    });
    space.check_invariants();
}
