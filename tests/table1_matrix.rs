//! Executable specification of the paper's Table I: all 16 update cases and
//! the 8 degenerate insert/delete cases, with the exact expected operation
//! sequences — first against the core `maintain` primitive, then end-to-end
//! through the engine's `EngineError`-returning DML entry points.

use adaptive_index_buffer::core::{
    maintain, BufferConfig, IndexBuffer, MaintAction, PageCounters, SpaceConfig, TupleRef,
};
use adaptive_index_buffer::engine::{Database, EngineConfig, EngineError, Query};
use adaptive_index_buffer::index::{Coverage, IndexBackend, PartialIndex};
use adaptive_index_buffer::storage::{Column, CostModel, Rid, Schema, Tuple, Value};
use MaintAction::*;

const BUFFERED_OLD: u32 = 0;
const BUFFERED_NEW: u32 = 1;
const PLAIN_OLD: u32 = 2;
const PLAIN_NEW: u32 = 3;

struct Fixture {
    partial: PartialIndex,
    buffer: IndexBuffer,
    counters: PageCounters,
}

fn fixture() -> Fixture {
    let mut partial = PartialIndex::new(
        "col",
        Coverage::IntRange { lo: 0, hi: 99 },
        IndexBackend::BTree,
    );
    let mut buffer = IndexBuffer::new(0, "col", BufferConfig::default());
    buffer.index_page(
        BUFFERED_OLD,
        vec![(Value::Int(500), Rid::new(BUFFERED_OLD, 0))],
    );
    buffer.index_page(
        BUFFERED_NEW,
        vec![(Value::Int(501), Rid::new(BUFFERED_NEW, 0))],
    );
    // Covered old tuples that the IX-side cases reference.
    partial.add(Value::Int(1), Rid::new(BUFFERED_OLD, 1));
    partial.add(Value::Int(2), Rid::new(PLAIN_OLD, 1));
    Fixture {
        partial,
        buffer,
        counters: PageCounters::from_counts(vec![0, 0, 5, 5]),
    }
}

fn old_ref(in_ix: bool, buffered: bool) -> TupleRef {
    let page = if buffered { BUFFERED_OLD } else { PLAIN_OLD };
    let (value, slot) = match (in_ix, buffered) {
        (true, true) => (1, 1),
        (true, false) => (2, 1),
        (false, _) => (500, 0),
    };
    TupleRef::new(Value::Int(value), Rid::new(page, slot), page)
}

fn new_ref(in_ix: bool, buffered: bool) -> TupleRef {
    let page = if buffered { BUFFERED_NEW } else { PLAIN_NEW };
    let value = if in_ix { 7 } else { 700 };
    TupleRef::new(Value::Int(value), Rid::new(page, 9), page)
}

/// The paper's Table I, row for row: ((old∈IX, new∈IX, p_old∈B, p_new∈B),
/// expected operations in execution order).
#[allow(clippy::type_complexity)]
fn expected_matrix() -> Vec<((bool, bool, bool, bool), Vec<MaintAction>)> {
    vec![
        // t_old ∈ IX, t_new ∈ IX: only the partial index moves.
        ((true, true, true, true), vec![IxUpdate]),
        ((true, true, true, false), vec![IxUpdate]),
        ((true, true, false, true), vec![IxUpdate]),
        ((true, true, false, false), vec![IxUpdate]),
        // t_old ∈ IX, t_new ∉ IX.
        ((true, false, true, true), vec![IxRemove, BAdd]),
        ((true, false, true, false), vec![IxRemove, IncNew]),
        ((true, false, false, true), vec![IxRemove, BAdd]),
        ((true, false, false, false), vec![IxRemove, IncNew]),
        // t_old ∉ IX, t_new ∈ IX.
        ((false, true, true, true), vec![IxAdd, BRemove]),
        ((false, true, true, false), vec![IxAdd, BRemove]),
        ((false, true, false, true), vec![IxAdd, DecOld]),
        ((false, true, false, false), vec![IxAdd, DecOld]),
        // t_old ∉ IX, t_new ∉ IX.
        ((false, false, true, true), vec![BUpdate]),
        ((false, false, true, false), vec![BRemove, IncNew]),
        ((false, false, false, true), vec![BAdd, DecOld]),
        ((false, false, false, false), vec![DecOld, IncNew]),
    ]
}

#[test]
fn all_sixteen_update_cases_match_table1() {
    for ((old_ix, new_ix, old_b, new_b), expected) in expected_matrix() {
        let mut f = fixture();
        let actions = maintain(
            &mut f.partial,
            &mut f.buffer,
            &mut f.counters,
            Some(old_ref(old_ix, old_b)),
            Some(new_ref(new_ix, new_b)),
        )
        .unwrap();
        assert_eq!(
            actions, expected,
            "case (old∈IX={old_ix}, new∈IX={new_ix}, p_old∈B={old_b}, p_new∈B={new_b})"
        );
        f.buffer.check_invariants();
    }
}

#[test]
fn insert_cases_match_table1_new_column() {
    let cases = [
        ((true, false), vec![IxAdd]),
        ((true, true), vec![IxAdd]), // covered insert ignores bufferedness
        ((false, true), vec![BAdd]),
        ((false, false), vec![IncNew]),
    ];
    for ((in_ix, buffered), expected) in cases {
        let mut f = fixture();
        let actions = maintain(
            &mut f.partial,
            &mut f.buffer,
            &mut f.counters,
            None,
            Some(new_ref(in_ix, buffered)),
        )
        .unwrap();
        assert_eq!(
            actions, expected,
            "insert (in_ix={in_ix}, buffered={buffered})"
        );
    }
}

#[test]
fn delete_cases_match_table1_old_column() {
    let cases = [
        ((true, false), vec![IxRemove]),
        ((true, true), vec![IxRemove]),
        ((false, true), vec![BRemove]),
        ((false, false), vec![DecOld]),
    ];
    for ((in_ix, buffered), expected) in cases {
        let mut f = fixture();
        let actions = maintain(
            &mut f.partial,
            &mut f.buffer,
            &mut f.counters,
            Some(old_ref(in_ix, buffered)),
            None,
        )
        .unwrap();
        assert_eq!(
            actions, expected,
            "delete (in_ix={in_ix}, buffered={buffered})"
        );
    }
}

#[test]
fn state_effects_are_consistent_with_actions() {
    // Spot-check that the reported actions reflect real state changes for
    // one representative case per action kind.
    let mut f = fixture();
    // (∉IX, ∉IX, B, ∉B): B.Remove + C[p_new]++.
    maintain(
        &mut f.partial,
        &mut f.buffer,
        &mut f.counters,
        Some(old_ref(false, true)),
        Some(new_ref(false, false)),
    )
    .unwrap();
    assert!(!f
        .buffer
        .contains(&Value::Int(500), Rid::new(BUFFERED_OLD, 0)));
    assert_eq!(f.counters.get(PLAIN_NEW), 6);
    assert_eq!(
        f.counters.get(BUFFERED_OLD),
        0,
        "buffered page stays skippable"
    );

    // (∉IX, IX, ∉B, _): IX.Add + C[p_old]--.
    let mut f = fixture();
    maintain(
        &mut f.partial,
        &mut f.buffer,
        &mut f.counters,
        Some(old_ref(false, false)),
        Some(new_ref(true, true)),
    )
    .unwrap();
    assert!(f
        .partial
        .contains(&Value::Int(7), Rid::new(BUFFERED_NEW, 9)));
    assert_eq!(f.counters.get(PLAIN_OLD), 4);
}

// ---------------------------------------------------------------------------
// The same matrix end-to-end through the engine's DML API.
//
// The engine decides bufferedness from real heap placement, so the harness
// engineers it: pages are filled exactly full (row capacity is measured, not
// assumed), a warm-up scan with unbounded `I^MAX` buffers every page, and
// rows inserted afterwards land on fresh unbuffered pages. Updates that keep
// the row size stay in place (p_old = p_new); updates that grow the row are
// forced to move, and free space is arranged so the destination's
// bufferedness is deterministic (the free-space map is last-fit, so a fresh
// tail page beats any interior hole, and a carved-out landing zone on page 0
// wins only once everything later is too full).
// ---------------------------------------------------------------------------

/// Covered values are `0..=99`; everything else is uncovered.
const COVERED_HI: i64 = 99;
/// Fixed body size of ordinary rows: capacity measurement depends on every
/// ordinary row encoding to the same length.
const PAD: usize = 120;
/// Body size that forces an in-place update to relocate: larger than a
/// page's tail slack plus several single-row holes combined, so a grown row
/// can never be absorbed where it was.
const GROWN_PAD: usize = 700;
/// Insert size that no ordinary single-row hole can absorb, used to steer
/// inserts into the page-0 landing zone.
const WIDE_PAD: usize = 140;

fn row(k: i64, pad: usize) -> Tuple {
    Tuple::new(vec![Value::Int(k), Value::from("x".repeat(pad))])
}

struct EngineFixture {
    db: Database,
    /// Base rids in insert order; even index = covered, odd = uncovered.
    rids: Vec<Rid>,
    /// Indices of `rids` already consumed as case victims.
    used: std::collections::HashSet<usize>,
    rows_per_page: usize,
    /// Source of fresh uncovered key values.
    next_k: i64,
}

impl EngineFixture {
    fn base_k(i: i64) -> i64 {
        if i % 2 == 0 {
            i % (COVERED_HI + 1)
        } else {
            1_000 + i
        }
    }

    /// Ten exactly-full pages of alternating covered/uncovered rows, a
    /// partial index on `k`, and one warm-up scan so every page is buffered.
    fn new() -> Self {
        let db = Database::new(EngineConfig {
            pool_frames: 256,
            cost_model: CostModel::free(),
            space: SpaceConfig {
                max_bytes: None,
                i_max: 100_000,
                seed: 5,
                ..Default::default()
            },
            ..Default::default()
        });
        db.create_table("t", Schema::new(vec![Column::int("k"), Column::str("pad")]))
            .unwrap();
        // Measure row capacity: fill page 0 until a row spills to page 1.
        let mut rids = Vec::new();
        let mut i = 0i64;
        loop {
            let rid = db.insert("t", &row(Self::base_k(i), PAD)).unwrap();
            i += 1;
            let ord = db.table("t").unwrap().page_ordinal(rid).unwrap();
            rids.push(rid);
            if ord == 1 {
                break;
            }
        }
        let rows_per_page = rids.len() - 1;
        assert!(rows_per_page >= 48, "PAD too large for a meaningful page");
        // Fill pages 1..=9 exactly full.
        while rids.len() < 10 * rows_per_page {
            rids.push(db.insert("t", &row(Self::base_k(i), PAD)).unwrap());
            i += 1;
        }
        db.create_partial_index(
            "t",
            "k",
            Coverage::IntRange {
                lo: 0,
                hi: COVERED_HI,
            },
            IndexBackend::BTree,
            Some(BufferConfig::default()),
        )
        .unwrap();
        let mut fx = EngineFixture {
            db,
            rids,
            used: std::collections::HashSet::new(),
            rows_per_page,
            next_k: 100_000,
        };
        fx.scan(); // Unbounded I^MAX: one scan buffers every page.
        assert_eq!(fx.db.table("t").unwrap().num_pages(), 10);
        for ord in 0..10 {
            assert!(fx.buffered(ord), "warm-up buffers page {ord}");
        }
        fx
    }

    /// Runs an uncovered point query: a buffered indexing scan.
    fn scan(&mut self) {
        self.db
            .execute(&Query::on("t", "k").eq(999_999_999i64))
            .unwrap();
    }

    fn fresh_uncovered(&mut self) -> i64 {
        self.next_k += 1;
        self.next_k
    }

    fn ord_of(&self, rid: Rid) -> u32 {
        self.db.table("t").unwrap().page_ordinal(rid).unwrap()
    }

    fn buffered(&self, ord: u32) -> bool {
        let bid = self.db.buffer_id("t", "k").unwrap();
        self.db.space_shard(bid).buffer(bid).is_buffered(ord)
    }

    fn entries(&self) -> i64 {
        let bid = self.db.buffer_id("t", "k").unwrap();
        self.db.space_shard(bid).buffer(bid).num_entries() as i64
    }

    fn counter(&self, ord: u32) -> u32 {
        let bid = self.db.buffer_id("t", "k").unwrap();
        self.db.space_shard(bid).counters(bid).get(ord)
    }

    fn ix_len(&self) -> i64 {
        self.db.partial_index_len("t", "k").unwrap() as i64
    }

    /// Takes an unused base victim with the wanted coverage on page `page`.
    fn take(&mut self, page: usize, covered: bool) -> Rid {
        let r = self.rows_per_page;
        let j = (page * r..(page + 1) * r)
            .find(|j| (j % 2 == 0) == covered && !self.used.contains(j))
            .expect("page has unused victims of both coverages");
        self.used.insert(j);
        self.rids[j]
    }

    /// One Table-I update case through `Database::update`. Asserts the
    /// bufferedness quadrant actually reached and the partial-index /
    /// buffer-entry deltas it must produce.
    fn update_case(
        &mut self,
        rid: Rid,
        new_k: i64,
        new_pad: usize,
        quadrant: (bool, bool, bool, bool),
        d_ix: i64,
        d_buf: i64,
    ) -> Rid {
        let (old_ix, new_ix, old_b, new_b) = quadrant;
        let old_k = self
            .db
            .fetch("t", rid)
            .unwrap()
            .get(0)
            .unwrap()
            .as_int()
            .unwrap();
        assert_eq!((0..=COVERED_HI).contains(&old_k), old_ix, "victim coverage");
        assert_eq!((0..=COVERED_HI).contains(&new_k), new_ix, "new coverage");
        let old_ord = self.ord_of(rid);
        assert_eq!(self.buffered(old_ord), old_b, "p_old bufferedness");
        let (ix0, buf0) = (self.ix_len(), self.entries());
        let new_rid = self.db.update("t", rid, &row(new_k, new_pad)).unwrap();
        let new_ord = self.ord_of(new_rid);
        assert_eq!(self.buffered(new_ord), new_b, "p_new bufferedness");
        if new_pad == PAD {
            assert_eq!(new_ord, old_ord, "same-size update stays in place");
        } else {
            assert_ne!(new_ord, old_ord, "grown update must relocate");
        }
        assert_eq!(
            self.ix_len() - ix0,
            d_ix,
            "partial-index delta {quadrant:?}"
        );
        assert_eq!(self.entries() - buf0, d_buf, "buffer delta {quadrant:?}");
        new_rid
    }
}

#[test]
fn table1_through_the_engine_dml_api() {
    let mut fx = EngineFixture::new();
    let covered_new = 50i64;

    // ---- Updates, p_old ∈ B and p_new ∈ B (same-size, in place). ----
    let v = fx.take(1, true);
    fx.update_case(v, covered_new, PAD, (true, true, true, true), 0, 0);
    let v = fx.take(1, false);
    let k = fx.fresh_uncovered();
    fx.update_case(v, k, PAD, (false, false, true, true), 0, 0);
    let v = fx.take(2, true);
    let k = fx.fresh_uncovered();
    fx.update_case(v, k, PAD, (true, false, true, true), -1, 1);
    let v = fx.take(2, false);
    fx.update_case(v, covered_new, PAD, (false, true, true, true), 1, -1);

    // ---- Deletes from buffered pages. ----
    let v = fx.take(5, true);
    let ix0 = fx.ix_len();
    fx.db.delete("t", v).unwrap();
    assert_eq!(fx.ix_len(), ix0 - 1, "covered delete: IX.Remove");
    let v = fx.take(6, false);
    let buf0 = fx.entries();
    fx.db.delete("t", v).unwrap();
    assert_eq!(
        fx.entries(),
        buf0 - 1,
        "buffered uncovered delete: B.Remove"
    );

    // ---- Updates, p_old ∈ B and p_new ∉ B (grown rows relocate to a fresh
    // tail page: every existing page is too full to take them). ----
    let v = fx.take(1, true);
    let moved = fx.update_case(v, covered_new, GROWN_PAD, (true, true, true, false), 0, 0);
    let fresh_ord = fx.ord_of(moved);
    assert_eq!(fresh_ord, 10, "first grown row opens a fresh page");
    let v = fx.take(2, true);
    let k = fx.fresh_uncovered();
    let c0 = fx.counter(fresh_ord);
    fx.update_case(v, k, GROWN_PAD, (true, false, true, false), -1, 0);
    assert_eq!(fx.counter(fresh_ord), c0 + 1, "IX→plain move: C[p_new]++");
    let v = fx.take(3, false);
    fx.update_case(v, covered_new, GROWN_PAD, (false, true, true, false), 1, -1);
    let v = fx.take(4, false);
    let k = fx.fresh_uncovered();
    let c0 = fx.counter(fresh_ord);
    fx.update_case(v, k, GROWN_PAD, (false, false, true, false), 0, -1);
    assert_eq!(fx.counter(fresh_ord), c0 + 1, "B.Remove + C[p_new]++");

    // ---- Inserts onto the unbuffered tail page. ----
    let ix0 = fx.ix_len();
    let rid = fx.db.insert("t", &row(covered_new, PAD)).unwrap();
    assert!(!fx.buffered(fx.ord_of(rid)));
    assert_eq!(fx.ix_len(), ix0 + 1, "covered insert: IX.Add");
    let k = fx.fresh_uncovered();
    let rid = fx.db.insert("t", &row(k, PAD)).unwrap();
    let ord = fx.ord_of(rid);
    assert!(!fx.buffered(ord));
    let c0 = fx.counter(ord);
    assert!(c0 > 0, "uncovered insert off-buffer: C[p]++ happened");

    // ---- Re-scan: the tail page becomes buffered too. ----
    fx.scan();
    let pages = fx.db.table("t").unwrap().num_pages();
    for ord in 0..pages {
        assert!(fx.buffered(ord), "page {ord} buffered after re-scan");
    }

    // ---- Grow an exactly-full *unbuffered* page at the tail: fill every
    // remaining hole, then put exactly one page's worth of rows on a fresh
    // page. ----
    let mut tail_rids = Vec::new();
    let mut i = 0i64;
    let tail_ord = loop {
        let k = if i % 2 == 0 {
            i % (COVERED_HI + 1)
        } else {
            fx.fresh_uncovered()
        };
        let rid = fx.db.insert("t", &row(k, PAD)).unwrap();
        i += 1;
        let ord = fx.ord_of(rid);
        if ord >= pages {
            tail_rids.push((rid, k));
            break ord;
        }
        // Interim rows land in buffered holes/slack: also Table-I insert
        // cases (covered → IX.Add, uncovered → B.Add).
        assert!(fx.buffered(ord));
    };
    assert!(!fx.buffered(tail_ord));
    for _ in 1..fx.rows_per_page {
        let k = if i % 2 == 0 {
            i % (COVERED_HI + 1)
        } else {
            fx.fresh_uncovered()
        };
        let rid = fx.db.insert("t", &row(k, PAD)).unwrap();
        i += 1;
        assert_eq!(fx.ord_of(rid), tail_ord, "tail page fills contiguously");
        tail_rids.push((rid, k));
    }

    // ---- Carve a landing zone on (buffered) page 0. ----
    for _ in 0..24 {
        let v = fx.take(0, false);
        fx.db.delete("t", v).unwrap();
    }
    assert!(fx.buffered(0), "page 0 stays buffered through deletes");

    // ---- Inserts into the buffered landing zone, while the tail is still
    // exactly full (too wide for any single-row hole elsewhere). ----
    let ix0 = fx.ix_len();
    let rid = fx.db.insert("t", &row(covered_new, WIDE_PAD)).unwrap();
    assert_eq!(fx.ord_of(rid), 0);
    assert!(fx.buffered(0));
    assert_eq!(fx.ix_len(), ix0 + 1, "covered insert onto buffered page");
    let k = fx.fresh_uncovered();
    let buf0 = fx.entries();
    let rid = fx.db.insert("t", &row(k, WIDE_PAD)).unwrap();
    assert_eq!(fx.ord_of(rid), 0);
    assert_eq!(
        fx.entries(),
        buf0 + 1,
        "uncovered insert onto buffered page: B.Add"
    );
    assert_eq!(fx.counter(0), 0, "buffered page stays skippable");

    // ---- Updates, p_old ∉ B and p_new ∈ B (grown rows can only land in the
    // page-0 zone: the tail is exactly full, holes are single-row). ----
    let mut tail_victim = |covered: bool| {
        let pos = tail_rids
            .iter()
            .position(|(_, k)| (0..=COVERED_HI).contains(k) == covered)
            .expect("tail has victims of both coverages");
        tail_rids.remove(pos).0
    };
    let v = tail_victim(true);
    let moved = fx.update_case(v, covered_new, GROWN_PAD, (true, true, false, true), 0, 0);
    assert_eq!(fx.ord_of(moved), 0, "landing zone is the only fit");
    let v = tail_victim(true);
    let k = fx.fresh_uncovered();
    fx.update_case(v, k, GROWN_PAD, (true, false, false, true), -1, 1);
    let v = tail_victim(false);
    let c0 = fx.counter(tail_ord);
    fx.update_case(v, covered_new, GROWN_PAD, (false, true, false, true), 1, 0);
    assert_eq!(fx.counter(tail_ord), c0 - 1, "IX.Add + C[p_old]--");
    let v = tail_victim(false);
    let k = fx.fresh_uncovered();
    let c0 = fx.counter(tail_ord);
    fx.update_case(v, k, GROWN_PAD, (false, false, false, true), 0, 1);
    assert_eq!(fx.counter(tail_ord), c0 - 1, "B.Add + C[p_old]--");

    // ---- Updates, p_old ∉ B and p_new ∉ B (same-size, in place). ----
    let v = tail_victim(true);
    fx.update_case(v, covered_new, PAD, (true, true, false, false), 0, 0);
    let v = tail_victim(true);
    let k = fx.fresh_uncovered();
    let c0 = fx.counter(tail_ord);
    fx.update_case(v, k, PAD, (true, false, false, false), -1, 0);
    assert_eq!(fx.counter(tail_ord), c0 + 1, "IX.Remove + C[p_new]++");
    let v = tail_victim(false);
    let c0 = fx.counter(tail_ord);
    fx.update_case(v, covered_new, PAD, (false, true, false, false), 1, 0);
    assert_eq!(fx.counter(tail_ord), c0 - 1, "IX.Add + C[p_old]--");
    let v = tail_victim(false);
    let k = fx.fresh_uncovered();
    let c0 = fx.counter(tail_ord);
    fx.update_case(v, k, PAD, (false, false, false, false), 0, 0);
    assert_eq!(fx.counter(tail_ord), c0, "C[p]-- then C[p]++ on one page");

    // ---- Deletes from the unbuffered tail page. ----
    let v = tail_victim(true);
    let ix0 = fx.ix_len();
    fx.db.delete("t", v).unwrap();
    assert_eq!(fx.ix_len(), ix0 - 1, "covered delete: IX.Remove");
    let v = tail_victim(false);
    let c0 = fx.counter(tail_ord);
    fx.db.delete("t", v).unwrap();
    assert_eq!(
        fx.counter(tail_ord),
        c0 - 1,
        "unbuffered uncovered delete: C[p]--"
    );

    // ---- Closing invariants: skippability holds on every page, and the
    // executor still answers from this state correctly. ----
    fx.db.check_space_invariants();
    let table = fx.db.table("t").unwrap();
    let bid = fx.db.buffer_id("t", "k").unwrap();
    let space = fx.db.space_shard(bid);
    let buffer = space.buffer(bid);
    let counters = space.counters(bid);
    for ord in 0..table.num_pages() {
        let uncovered: Vec<(Rid, Value)> = table
            .page_tuples(ord)
            .unwrap()
            .into_iter()
            .filter(|(_, t)| !(0..=COVERED_HI).contains(&t.get(0).unwrap().as_int().unwrap()))
            .map(|(rid, t)| (rid, t.get(0).unwrap().clone()))
            .collect();
        if buffer.is_buffered(ord) {
            assert_eq!(counters.get(ord), 0, "page {ord}: buffered but C > 0");
            for (rid, v) in &uncovered {
                assert!(buffer.contains(v, *rid), "page {ord}: {v:?} missing");
            }
        } else {
            assert_eq!(
                counters.get(ord) as usize,
                uncovered.len(),
                "page {ord}: counter tracks uncovered tuples"
            );
        }
    }
    let truth = table
        .scan_all()
        .unwrap()
        .iter()
        .filter(|(_, t)| t.get(0).unwrap().as_int() == Some(covered_new))
        .count();
    // Release the inspection guards before executing: the query's buffer
    // insertions need the space write lock.
    drop(space);
    drop(table);
    let outcome = fx.db.execute(&Query::on("t", "k").eq(covered_new)).unwrap();
    assert_eq!(
        outcome.result.count(),
        truth,
        "post-matrix query correctness"
    );
}

#[test]
fn dml_entry_points_surface_catalog_errors() {
    let db = Database::new(EngineConfig {
        pool_frames: 16,
        cost_model: CostModel::free(),
        ..Default::default()
    });
    db.create_table("t", Schema::new(vec![Column::int("k")]))
        .unwrap();
    let t = Tuple::new(vec![Value::Int(1)]);
    let rid = db.insert("t", &t).unwrap();

    let unknown_table = EngineError::UnknownTable("nope".into());
    assert_eq!(db.insert("nope", &t).unwrap_err(), unknown_table);
    assert_eq!(db.update("nope", rid, &t).unwrap_err(), unknown_table);
    assert_eq!(db.delete("nope", rid).unwrap_err(), unknown_table);
    assert_eq!(db.fetch("nope", rid).unwrap_err(), unknown_table);
    assert_eq!(
        db.execute(&Query::on("nope", "k").eq(1i64)).unwrap_err(),
        unknown_table
    );
    assert_eq!(db.vacuum("nope", 0.5).unwrap_err(), unknown_table);

    assert_eq!(
        db.execute(&Query::on("t", "zz").eq(1i64)).unwrap_err(),
        EngineError::UnknownColumn("zz".into())
    );
    assert_eq!(
        db.create_partial_index(
            "t",
            "zz",
            Coverage::IntRange { lo: 0, hi: 9 },
            IndexBackend::BTree,
            None,
        )
        .unwrap_err(),
        EngineError::UnknownColumn("zz".into())
    );
    assert_eq!(
        db.drop_partial_index("t", "k").unwrap_err(),
        EngineError::NoSuchIndex("t.k".into())
    );
}
