//! Executable specification of the paper's Table I: all 16 update cases and
//! the 8 degenerate insert/delete cases, with the exact expected operation
//! sequences.

use adaptive_index_buffer::core::{
    maintain, BufferConfig, IndexBuffer, MaintAction, PageCounters, TupleRef,
};
use adaptive_index_buffer::index::{Coverage, IndexBackend, PartialIndex};
use adaptive_index_buffer::storage::{Rid, Value};
use MaintAction::*;

const BUFFERED_OLD: u32 = 0;
const BUFFERED_NEW: u32 = 1;
const PLAIN_OLD: u32 = 2;
const PLAIN_NEW: u32 = 3;

struct Fixture {
    partial: PartialIndex,
    buffer: IndexBuffer,
    counters: PageCounters,
}

fn fixture() -> Fixture {
    let mut partial = PartialIndex::new(
        "col",
        Coverage::IntRange { lo: 0, hi: 99 },
        IndexBackend::BTree,
    );
    let mut buffer = IndexBuffer::new(0, "col", BufferConfig::default());
    buffer.index_page(
        BUFFERED_OLD,
        vec![(Value::Int(500), Rid::new(BUFFERED_OLD, 0))],
    );
    buffer.index_page(
        BUFFERED_NEW,
        vec![(Value::Int(501), Rid::new(BUFFERED_NEW, 0))],
    );
    // Covered old tuples that the IX-side cases reference.
    partial.add(Value::Int(1), Rid::new(BUFFERED_OLD, 1));
    partial.add(Value::Int(2), Rid::new(PLAIN_OLD, 1));
    Fixture {
        partial,
        buffer,
        counters: PageCounters::from_counts(vec![0, 0, 5, 5]),
    }
}

fn old_ref(in_ix: bool, buffered: bool) -> TupleRef {
    let page = if buffered { BUFFERED_OLD } else { PLAIN_OLD };
    let (value, slot) = match (in_ix, buffered) {
        (true, true) => (1, 1),
        (true, false) => (2, 1),
        (false, _) => (500, 0),
    };
    TupleRef::new(Value::Int(value), Rid::new(page, slot), page)
}

fn new_ref(in_ix: bool, buffered: bool) -> TupleRef {
    let page = if buffered { BUFFERED_NEW } else { PLAIN_NEW };
    let value = if in_ix { 7 } else { 700 };
    TupleRef::new(Value::Int(value), Rid::new(page, 9), page)
}

/// The paper's Table I, row for row: ((old∈IX, new∈IX, p_old∈B, p_new∈B),
/// expected operations in execution order).
#[allow(clippy::type_complexity)]
fn expected_matrix() -> Vec<((bool, bool, bool, bool), Vec<MaintAction>)> {
    vec![
        // t_old ∈ IX, t_new ∈ IX: only the partial index moves.
        ((true, true, true, true), vec![IxUpdate]),
        ((true, true, true, false), vec![IxUpdate]),
        ((true, true, false, true), vec![IxUpdate]),
        ((true, true, false, false), vec![IxUpdate]),
        // t_old ∈ IX, t_new ∉ IX.
        ((true, false, true, true), vec![IxRemove, BAdd]),
        ((true, false, true, false), vec![IxRemove, IncNew]),
        ((true, false, false, true), vec![IxRemove, BAdd]),
        ((true, false, false, false), vec![IxRemove, IncNew]),
        // t_old ∉ IX, t_new ∈ IX.
        ((false, true, true, true), vec![IxAdd, BRemove]),
        ((false, true, true, false), vec![IxAdd, BRemove]),
        ((false, true, false, true), vec![IxAdd, DecOld]),
        ((false, true, false, false), vec![IxAdd, DecOld]),
        // t_old ∉ IX, t_new ∉ IX.
        ((false, false, true, true), vec![BUpdate]),
        ((false, false, true, false), vec![BRemove, IncNew]),
        ((false, false, false, true), vec![BAdd, DecOld]),
        ((false, false, false, false), vec![DecOld, IncNew]),
    ]
}

#[test]
fn all_sixteen_update_cases_match_table1() {
    for ((old_ix, new_ix, old_b, new_b), expected) in expected_matrix() {
        let mut f = fixture();
        let actions = maintain(
            &mut f.partial,
            &mut f.buffer,
            &mut f.counters,
            Some(old_ref(old_ix, old_b)),
            Some(new_ref(new_ix, new_b)),
        );
        assert_eq!(
            actions, expected,
            "case (old∈IX={old_ix}, new∈IX={new_ix}, p_old∈B={old_b}, p_new∈B={new_b})"
        );
        f.buffer.check_invariants();
    }
}

#[test]
fn insert_cases_match_table1_new_column() {
    let cases = [
        ((true, false), vec![IxAdd]),
        ((true, true), vec![IxAdd]), // covered insert ignores bufferedness
        ((false, true), vec![BAdd]),
        ((false, false), vec![IncNew]),
    ];
    for ((in_ix, buffered), expected) in cases {
        let mut f = fixture();
        let actions = maintain(
            &mut f.partial,
            &mut f.buffer,
            &mut f.counters,
            None,
            Some(new_ref(in_ix, buffered)),
        );
        assert_eq!(
            actions, expected,
            "insert (in_ix={in_ix}, buffered={buffered})"
        );
    }
}

#[test]
fn delete_cases_match_table1_old_column() {
    let cases = [
        ((true, false), vec![IxRemove]),
        ((true, true), vec![IxRemove]),
        ((false, true), vec![BRemove]),
        ((false, false), vec![DecOld]),
    ];
    for ((in_ix, buffered), expected) in cases {
        let mut f = fixture();
        let actions = maintain(
            &mut f.partial,
            &mut f.buffer,
            &mut f.counters,
            Some(old_ref(in_ix, buffered)),
            None,
        );
        assert_eq!(
            actions, expected,
            "delete (in_ix={in_ix}, buffered={buffered})"
        );
    }
}

#[test]
fn state_effects_are_consistent_with_actions() {
    // Spot-check that the reported actions reflect real state changes for
    // one representative case per action kind.
    let mut f = fixture();
    // (∉IX, ∉IX, B, ∉B): B.Remove + C[p_new]++.
    maintain(
        &mut f.partial,
        &mut f.buffer,
        &mut f.counters,
        Some(old_ref(false, true)),
        Some(new_ref(false, false)),
    );
    assert!(!f
        .buffer
        .contains(&Value::Int(500), Rid::new(BUFFERED_OLD, 0)));
    assert_eq!(f.counters.get(PLAIN_NEW), 6);
    assert_eq!(
        f.counters.get(BUFFERED_OLD),
        0,
        "buffered page stays skippable"
    );

    // (∉IX, IX, ∉B, _): IX.Add + C[p_old]--.
    let mut f = fixture();
    maintain(
        &mut f.partial,
        &mut f.buffer,
        &mut f.counters,
        Some(old_ref(false, false)),
        Some(new_ref(true, true)),
    );
    assert!(f
        .partial
        .contains(&Value::Int(7), Rid::new(BUFFERED_NEW, 9)));
    assert_eq!(f.counters.get(PLAIN_OLD), 4);
}
