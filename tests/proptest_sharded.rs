//! Sharded-equivalence property test (`invariant-checks` feature only):
//! the same random workload of DML, point/range queries (driving indexing
//! scans, Algorithm 2 displacement, and the online tuner) replayed against
//! spaces with `shards ∈ {2, 4, 8}` must agree with the `shards = 1` run —
//! identical tuple placement, identical query answers — and every run must
//! satisfy the ground-truth shadow model after every mutation.
//!
//! What is and is not preserved across shard counts: the Index Buffer is a
//! transparent cache, so *answers* are invariant, but *buffer state* need
//! not be — each shard draws displacement victims from its own seeded
//! policy (`seed + shard_index`) and can only displace same-shard
//! partitions, so a buffer that shares a shard with its pressure source in
//! one configuration may keep different pages in another. The shared
//! [`MemoryBudget`] cap is the cross-shard coupling: all shards charge one
//! governor, and the byte bound must hold for every shard count.
//!
//! Run with `cargo test --features invariant-checks --test proptest_sharded`.
#![cfg(feature = "invariant-checks")]

use adaptive_index_buffer::core::{BufferConfig, SpaceConfig};
use adaptive_index_buffer::engine::tuner::TunerConfig;
use adaptive_index_buffer::engine::{Database, EngineConfig, Query};
use adaptive_index_buffer::index::{Coverage, IndexBackend};
use adaptive_index_buffer::storage::{
    Column, CostModel, Rid, Schema, Tuple, Value, DEFAULT_ENTRY_FOOTPRINT,
};
use proptest::prelude::*;

const DOMAIN: i64 = 40;
/// Byte cap shared by every buffer in every shard — tight enough that
/// indexing scans constantly displace partitions, so shard counts where the
/// victims live elsewhere feel the pressure purely through the governor.
const CAP_ENTRIES: usize = 60;

#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64, i64, u16),
    Delete(usize),
    Update(usize, i64, i64, i64),
    /// Point query on column "a" (range-covered), "b" (tuned set coverage),
    /// or "c" (range-covered, third shard when sharded).
    Point(u8, i64),
    /// Range query on "a" or "c": sweeps many pages, maximizing Algorithm 2
    /// selections and displacement churn.
    Range(u8, i64, i64),
}

fn op() -> impl Strategy<Value = Op> {
    let val = 1..=DOMAIN;
    prop_oneof![
        3 => (val.clone(), val.clone(), val.clone(), 1u16..300)
            .prop_map(|(a, b, c, n)| Op::Insert(a, b, c, n)),
        2 => (0usize..1000).prop_map(Op::Delete),
        2 => ((0usize..1000), val.clone(), val.clone(), val.clone())
            .prop_map(|(i, a, b, c)| Op::Update(i, a, b, c)),
        5 => ((0u8..3), val.clone()).prop_map(|(col, v)| Op::Point(col, v)),
        2 => ((0u8..2), val.clone(), val.clone())
            .prop_map(|(col, lo, hi)| Op::Range(col, lo.min(hi), lo.max(hi))),
    ]
}

fn col_name(col: u8) -> &'static str {
    match col {
        0 => "a",
        1 => "b",
        _ => "c",
    }
}

/// Three buffers so `shards = 2` splits them 2/1 and `shards = 4`/`8` give
/// every buffer a private shard; one tight shared budget underneath.
fn build(shards: usize, seed_rows: usize) -> (Database, Vec<Rid>) {
    let mut db = Database::new(EngineConfig {
        pool_frames: 8,
        cost_model: CostModel::free(),
        space: SpaceConfig {
            max_bytes: Some(CAP_ENTRIES * DEFAULT_ENTRY_FOOTPRINT),
            i_max: 4,
            seed: 7,
            shards,
        },
        ..Default::default()
    });
    db.create_table(
        "t",
        Schema::new(vec![
            Column::int("a"),
            Column::int("b"),
            Column::int("c"),
            Column::str("pad"),
        ]),
    )
    .unwrap();
    let mut rids = Vec::new();
    for i in 0..seed_rows {
        let t = Tuple::new(vec![
            Value::Int((i as i64 * 13) % DOMAIN + 1),
            Value::Int((i as i64 * 29) % DOMAIN + 1),
            Value::Int((i as i64 * 17) % DOMAIN + 1),
            Value::from("x".repeat(1 + (i * 37) % 200)),
        ]);
        rids.push(db.insert("t", &t).unwrap());
    }
    let small = BufferConfig {
        partition_pages: 2,
        ..Default::default()
    };
    db.create_partial_index(
        "t",
        "a",
        Coverage::IntRange { lo: 1, hi: 12 },
        IndexBackend::BTree,
        Some(small),
    )
    .unwrap();
    db.create_partial_index(
        "t",
        "b",
        Coverage::empty_set(),
        IndexBackend::BTree,
        Some(small),
    )
    .unwrap();
    db.create_partial_index(
        "t",
        "c",
        Coverage::IntRange { lo: 20, hi: 32 },
        IndexBackend::BTree,
        Some(small),
    )
    .unwrap();
    db.attach_tuner(
        "t",
        "b",
        TunerConfig {
            window: 8,
            threshold: 2,
            capacity: 3,
        },
    )
    .unwrap();
    (db, rids)
}

/// Ground truth recomputed from the heap, independent of any buffer state.
fn truth_point(db: &Database, col: &str, value: i64) -> Vec<Rid> {
    truth_range(db, col, value, value)
}

fn truth_range(db: &Database, col: &str, lo: i64, hi: i64) -> Vec<Rid> {
    let table = db.table("t").unwrap();
    let ci = table.schema().column_index(col).unwrap();
    let mut rids: Vec<Rid> = table
        .scan_all()
        .unwrap()
        .into_iter()
        .filter(|(_, t)| {
            t.get(ci)
                .unwrap()
                .as_int()
                .is_some_and(|v| lo <= v && v <= hi)
        })
        .map(|(rid, _)| rid)
        .collect();
    rids.sort_unstable();
    rids
}

/// Replays `ops` against a fresh `shards`-way database. Returns the sorted
/// answer of every query and the rid returned by every placement-observable
/// DML op, plus runs the full shadow model and the shared-budget bound.
fn run(shards: usize, ops: &[Op]) -> (Vec<Vec<Rid>>, Vec<Rid>) {
    let (mut db, mut rids) = build(shards, 120);
    let mut answers = Vec::new();
    for op in ops {
        match *op {
            Op::Insert(a, b, c, n) => {
                let t = Tuple::new(vec![
                    Value::Int(a),
                    Value::Int(b),
                    Value::Int(c),
                    Value::from("y".repeat(n as usize)),
                ]);
                rids.push(db.insert("t", &t).unwrap());
            }
            Op::Delete(i) => {
                if rids.is_empty() {
                    continue;
                }
                let rid = rids.remove(i % rids.len());
                db.delete("t", rid).unwrap();
            }
            Op::Update(i, a, b, c) => {
                if rids.is_empty() {
                    continue;
                }
                let idx = i % rids.len();
                let old = db.fetch("t", rids[idx]).unwrap();
                let pad = old.get(3).unwrap().clone();
                let t = Tuple::new(vec![Value::Int(a), Value::Int(b), Value::Int(c), pad]);
                rids[idx] = db.update("t", rids[idx], &t).unwrap();
            }
            Op::Point(col, v) => {
                let col = col_name(col);
                let r = db.execute(&Query::point("t", col, v)).unwrap().result;
                let mut got = r.rids.clone();
                got.sort_unstable();
                assert_eq!(got, truth_point(&db, col, v), "shards={shards} {col}={v}");
                answers.push(got);
            }
            Op::Range(col, lo, hi) => {
                let col = col_name(col);
                let r = db
                    .execute(&Query::on("t", col).between(lo, hi))
                    .unwrap()
                    .result;
                let mut got = r.rids.clone();
                got.sort_unstable();
                assert_eq!(
                    got,
                    truth_range(&db, col, lo, hi),
                    "shards={shards} {col} in {lo}..={hi}"
                );
                answers.push(got);
            }
        }
    }
    // Full shadow-model pass (also re-run inside the engine after every
    // mutation under this feature), then the shared-governor coupling:
    // however the buffers landed across shards, the one budget they all
    // charge must equal the sum of their resident footprints. (A hard
    // `<= cap` bound would be wrong even unsharded: Table I DML may append
    // to a buffered page outside Algorithm 2's admission gate, because a
    // buffered page must stay complete; only *selections* are cap-gated.)
    db.verify_invariants().unwrap();
    db.check_space_invariants();
    let mem = db.memory();
    let snapshot = db.space_snapshot();
    let resident: usize = snapshot.buffers().map(|b| b.footprint()).sum();
    assert_eq!(
        mem.index_bytes, resident,
        "shards={shards}: governor charge must equal the summed shard footprints"
    );
    (answers, rids)
}

proptest! {
    // Each case runs the workload four times (shards = 1, 2, 4, 8) with the
    // shadow model re-verified after every mutation, so keep cases modest —
    // interleaving depth matters more than breadth.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn sharded_runs_agree_with_single_shard(
        ops in prop::collection::vec(op(), 1..36),
    ) {
        let (reference, reference_rids) = run(1, &ops);
        for shards in [2usize, 4, 8] {
            let (answers, rids) = run(shards, &ops);
            prop_assert_eq!(
                &answers, &reference,
                "query answers diverged between shards=1 and shards={}", shards
            );
            prop_assert_eq!(
                &rids, &reference_rids,
                "tuple placement diverged between shards=1 and shards={}", shards
            );
        }
    }
}
