//! Cross-crate integration tests: the full pipeline from generated data
//! through partial indexes, the Adaptive Index Buffer, DML, and the
//! executor, validated against ground truth.

use adaptive_index_buffer::core::{BufferConfig, SpaceConfig};
use adaptive_index_buffer::engine::{AccessPath, Database, EngineConfig, Query};
use adaptive_index_buffer::index::{Coverage, IndexBackend};
use adaptive_index_buffer::storage::{CostModel, Tuple, Value, DEFAULT_ENTRY_FOOTPRINT};
use adaptive_index_buffer::workload::{experiment1_queries, experiment3_queries, TableSpec};

fn eval_db(rows: u64, space: SpaceConfig) -> (Database, TableSpec) {
    let spec = TableSpec::scaled(rows, 77);
    let db = Database::new(EngineConfig {
        pool_frames: 64,
        cost_model: CostModel::default(),
        space,
        ..Default::default()
    });
    db.create_table("eval", spec.schema()).unwrap();
    for t in spec.tuples() {
        db.insert("eval", &t).unwrap();
    }
    let (lo, hi) = spec.covered_range();
    for col in ["A", "B", "C"] {
        db.create_partial_index(
            "eval",
            col,
            Coverage::IntRange { lo, hi },
            IndexBackend::BTree,
            Some(BufferConfig {
                partition_pages: 200,
                ..Default::default()
            }),
        )
        .unwrap();
    }
    (db, spec)
}

/// Ground truth by decoding every live tuple.
fn truth(db: &Database, column: &str, value: i64) -> usize {
    let table = db.table("eval").unwrap();
    let ci = table.schema().column_index(column).unwrap();
    table
        .scan_all()
        .unwrap()
        .iter()
        .filter(|(_, t)| t.get(ci).unwrap().as_int() == Some(value))
        .count()
}

#[test]
fn experiment1_workload_is_correct_and_converges() {
    let space = SpaceConfig {
        max_bytes: None,
        i_max: 100,
        seed: 1,
        ..Default::default()
    };
    let (db, spec) = eval_db(20_000, space);
    let queries = experiment1_queries(&spec, 60, 5);
    let mut last_skipped = 0;
    for q in &queries {
        let (r, m) = db
            .execute(&Query::point("eval", &q.column, q.value))
            .unwrap()
            .into_parts();
        assert_eq!(r.count(), truth(&db, &q.column, q.value), "query {q:?}");
        assert_eq!(r.path, AccessPath::BufferedScan);
        let s = m.scan.unwrap();
        assert!(
            s.pages_skipped >= last_skipped.min(s.pages_skipped),
            "skippable pages never regress under unlimited space"
        );
        last_skipped = s.pages_skipped;
    }
    // Convergence: with I^MAX=100 and ~700 pages, 60 queries suffice.
    let (_, m) = db
        .execute(&Query::point("eval", "A", spec.domain))
        .unwrap()
        .into_parts();
    assert_eq!(
        m.scan.unwrap().pages_read,
        0,
        "table fully buffered for column A"
    );
    db.check_space_invariants();
}

#[test]
fn experiment3_respects_space_bound_and_flips_allocation() {
    let rows = 20_000u64;
    let bound = (rows as f64 * 1.6) as usize;
    let space = SpaceConfig {
        max_bytes: Some(bound * DEFAULT_ENTRY_FOOTPRINT),
        i_max: 200,
        seed: 2,
        ..Default::default()
    };
    let (db, spec) = eval_db(rows, space);
    let queries = experiment3_queries(&spec, 200, 9);
    let mut entries_at_switch = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        let (r, m) = db
            .execute(&Query::point("eval", &q.column, q.value))
            .unwrap()
            .into_parts();
        assert_eq!(r.count(), truth(&db, &q.column, q.value));
        // The space bound holds after every scan (scans re-establish it).
        let total: usize = m.buffer_entries.iter().sum();
        assert!(total <= bound, "query {i}: {total} > {bound}");
        if i == 99 {
            entries_at_switch = m.buffer_entries.clone();
        }
    }
    let final_entries: Vec<usize> = (0..3)
        .map(|b| db.space_shard(b).buffer(b).num_entries())
        .collect();
    assert!(
        entries_at_switch[0] > entries_at_switch[2],
        "A dominates C before the switch: {entries_at_switch:?}"
    );
    assert!(
        final_entries[2] > final_entries[0],
        "C dominates A after the switch: {final_entries:?}"
    );
    db.check_space_invariants();
}

#[test]
fn dml_between_queries_never_breaks_results() {
    let space = SpaceConfig {
        max_bytes: None,
        i_max: 1_000_000,
        seed: 3,
        ..Default::default()
    };
    let (db, spec) = eval_db(5_000, space);
    // Warm the buffer for column A.
    let probe = spec.domain; // uncovered value
    db.execute(&Query::point("eval", "A", probe)).unwrap();

    // Insert new matching tuples; they must be visible immediately.
    let mut my_rids = Vec::new();
    for i in 0..20 {
        let t = Tuple::new(vec![
            Value::Int(probe),
            Value::Int(1 + i % 50),
            Value::Int(spec.domain - 1),
            Value::from("fresh"),
        ]);
        my_rids.push(db.insert("eval", &t).unwrap());
    }
    let (r, _) = db
        .execute(&Query::point("eval", "A", probe))
        .unwrap()
        .into_parts();
    assert_eq!(r.count(), truth(&db, "A", probe));
    assert!(my_rids.iter().all(|rid| r.rids.contains(rid)));

    // Delete half of them.
    for rid in my_rids.iter().take(10) {
        db.delete("eval", *rid).unwrap();
    }
    let (r, _) = db
        .execute(&Query::point("eval", "A", probe))
        .unwrap()
        .into_parts();
    assert_eq!(r.count(), truth(&db, "A", probe));

    // Update the rest to a covered value: they leave the buffer and enter
    // the partial index.
    for rid in my_rids.iter().skip(10) {
        let t = db.fetch("eval", *rid).unwrap();
        let mut vals = t.into_values();
        vals[0] = Value::Int(1);
        db.update("eval", *rid, &Tuple::new(vals)).unwrap();
    }
    let (r, _) = db
        .execute(&Query::point("eval", "A", probe))
        .unwrap()
        .into_parts();
    assert_eq!(r.count(), truth(&db, "A", probe));
    let (r, m) = db
        .execute(&Query::point("eval", "A", 1i64))
        .unwrap()
        .into_parts();
    assert_eq!(m.path, AccessPath::PartialIndex);
    assert_eq!(r.count(), truth(&db, "A", 1));
    db.check_space_invariants();
}

#[test]
fn counters_match_ground_truth_after_mixed_workload() {
    let space = SpaceConfig {
        max_bytes: Some(4_000 * DEFAULT_ENTRY_FOOTPRINT),
        i_max: 50,
        seed: 4,
        ..Default::default()
    };
    let (db, spec) = eval_db(5_000, space);
    // Mixed queries warm up all three buffers against the bound.
    let queries = experiment3_queries(&spec, 80, 13);
    for q in &queries {
        db.execute(&Query::point("eval", &q.column, q.value))
            .unwrap();
    }
    // Central invariant (paper §III): for each column and page, C[p] equals
    // the number of live tuples on the page covered by neither the partial
    // index nor the Index Buffer.
    let (clo, chi) = spec.covered_range();
    let table = db.table("eval").unwrap();
    for (col_idx, col) in ["A", "B", "C"].iter().enumerate() {
        let bid = db.buffer_id("eval", col).unwrap();
        let space = db.space_shard(bid);
        let buffer = space.buffer(bid);
        let counters = space.counters(bid);
        let ci = table.schema().column_index(col).unwrap();
        for ord in 0..table.num_pages() {
            let tuples = table.page_tuples(ord).unwrap();
            let uncovered: Vec<_> = tuples
                .iter()
                .filter(|(_, t)| {
                    let v = t.get(ci).unwrap().as_int().unwrap();
                    !(clo <= v && v <= chi)
                })
                .collect();
            if buffer.is_buffered(ord) {
                assert_eq!(counters.get(ord), 0, "col {col} page {ord} buffered");
                for (rid, t) in &uncovered {
                    assert!(
                        buffer.contains(t.get(ci).unwrap(), *rid),
                        "col {col} page {ord}: buffered page misses entry"
                    );
                }
            } else {
                assert_eq!(
                    counters.get(ord) as usize,
                    uncovered.len(),
                    "col {col} page {ord} counter (col_idx {col_idx})"
                );
            }
        }
    }
    db.check_space_invariants();
}

#[test]
fn range_queries_agree_with_ground_truth_across_coverage_boundary() {
    let space = SpaceConfig {
        max_bytes: None,
        i_max: 1_000_000,
        seed: 5,
        ..Default::default()
    };
    let (db, spec) = eval_db(5_000, space);
    let (_, chi) = spec.covered_range();
    let table = db.table("eval").unwrap();
    let ci = table.schema().column_index("A").unwrap();
    let all = table.scan_all().unwrap();
    let truth_range = |lo: i64, hi: i64| {
        all.iter()
            .filter(|(_, t)| {
                let v = t.get(ci).unwrap().as_int().unwrap();
                lo <= v && v <= hi
            })
            .count()
    };
    for (lo, hi) in [
        (1, 40),
        (chi - 20, chi + 20),
        (chi + 1, chi + 60),
        (1, spec.domain),
    ] {
        for _ in 0..2 {
            let (r, _) = db
                .execute(&Query::range("eval", "A", lo, hi))
                .unwrap()
                .into_parts();
            assert_eq!(r.count(), truth_range(lo, hi), "range [{lo},{hi}]");
        }
    }
}
