//! Concurrency tests: the storage substrate under multi-threaded access.
//!
//! The Index Buffer itself is driven by the (single-threaded) executor, but
//! the buffer pool and heap files are shared infrastructure and must be
//! sound under parallel readers and writers.

use adaptive_index_buffer::storage::{
    BufferPool, BufferPoolConfig, CostModel, DiskManager, HeapFile, Rid, Tuple, Value,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[test]
fn parallel_heap_readers_during_inserts() {
    let pool = BufferPool::new(
        DiskManager::new(CostModel::free()),
        BufferPoolConfig::lru(16),
    );
    let heap = Arc::new(HeapFile::new(pool));
    // Seed with stable tuples the readers will verify.
    let mut stable: Vec<(Rid, i64)> = Vec::new();
    for i in 0..500i64 {
        let rid = heap
            .insert(&Tuple::new(vec![Value::Int(i), Value::from("seed")]).to_bytes())
            .unwrap();
        stable.push((rid, i));
    }
    let stop = Arc::new(AtomicBool::new(false));

    let mut handles = Vec::new();
    // Writers keep appending.
    for w in 0..2 {
        let heap = Arc::clone(&heap);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut n = 0i64;
            while !stop.load(Ordering::Relaxed) {
                let t = Tuple::new(vec![Value::Int(10_000 + w * 100_000 + n), Value::from("w")]);
                heap.insert(&t.to_bytes()).unwrap();
                n += 1;
            }
            n
        }));
    }
    // Readers verify the stable tuples and run scans.
    let mut readers = Vec::new();
    for _ in 0..3 {
        let heap = Arc::clone(&heap);
        let stable = stable.clone();
        readers.push(std::thread::spawn(move || {
            for round in 0..30 {
                for (rid, k) in stable.iter().skip(round % 7).step_by(7) {
                    let bytes = heap.get(*rid).unwrap();
                    let t = Tuple::from_bytes(&bytes).unwrap();
                    assert_eq!(t.get(0).unwrap().as_int(), Some(*k));
                }
                let mut seen = 0u64;
                heap.scan_pages(|_| false, |_, _| seen += 1).unwrap();
                assert!(seen >= 500);
            }
        }));
    }
    for r in readers {
        r.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let written: i64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(heap.live_tuples(), 500 + written as u64);
}

#[test]
fn pool_eviction_pressure_is_linearizable_per_page() {
    // Many threads hammer a few pages through a tiny pool; each page holds
    // a per-page counter only its owner thread increments, so values must
    // never regress.
    let pool = BufferPool::new(
        DiskManager::new(CostModel::free()),
        BufferPoolConfig::lru(4),
    );
    let mut pids = Vec::new();
    for _ in 0..16 {
        let (pid, g) = pool.new_page().unwrap();
        drop(g);
        pids.push(pid);
    }
    let mut handles = Vec::new();
    for (t, &pid) in pids.iter().enumerate().take(8) {
        let pool = Arc::clone(&pool);
        handles.push(std::thread::spawn(move || {
            let mut last = 0u64;
            for _ in 0..200 {
                let mut w = pool.fetch_write(pid).unwrap();
                let mut val = u64::from_le_bytes(w[..8].try_into().unwrap());
                assert!(val >= last, "thread {t}: page value regressed");
                val += 1;
                last = val;
                w[..8].copy_from_slice(&val.to_le_bytes());
            }
            last
        }));
    }
    // Background readers on the remaining pages create eviction traffic.
    for &pid in pids.iter().skip(8) {
        let pool = Arc::clone(&pool);
        handles.push(std::thread::spawn(move || {
            let mut acc = 0u64;
            for _ in 0..200 {
                let r = pool.fetch_read(pid).unwrap();
                acc = acc.wrapping_add(u64::from(r[9]));
            }
            acc
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // Final values persisted.
    for &pid in pids.iter().take(8) {
        let r = pool.fetch_read(pid).unwrap();
        assert_eq!(u64::from_le_bytes(r[..8].try_into().unwrap()), 200);
    }
}
