//! Concurrency tests, bottom to top: the storage substrate under
//! multi-threaded access, then the multi-client engine — concurrent read
//! queries (whose indexing scans *mutate* the Index Buffer through the
//! staged-apply write sections) racing each other and DML.

use adaptive_index_buffer::core::{BufferConfig, SpaceConfig};
use adaptive_index_buffer::engine::{ClientHandle, Database, EngineConfig, Query};
use adaptive_index_buffer::index::{Coverage, IndexBackend};
use adaptive_index_buffer::storage::{
    BufferPool, BufferPoolConfig, Column, CostModel, DiskManager, HeapFile, Rid, Schema, Tuple,
    Value,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[test]
fn parallel_heap_readers_during_inserts() {
    let pool = BufferPool::new(
        DiskManager::new(CostModel::free()),
        BufferPoolConfig::lru(16),
    );
    let heap = Arc::new(HeapFile::new(pool));
    // Seed with stable tuples the readers will verify.
    let mut stable: Vec<(Rid, i64)> = Vec::new();
    for i in 0..500i64 {
        let rid = heap
            .insert(&Tuple::new(vec![Value::Int(i), Value::from("seed")]).to_bytes())
            .unwrap();
        stable.push((rid, i));
    }
    let stop = Arc::new(AtomicBool::new(false));

    let mut handles = Vec::new();
    // Writers keep appending.
    for w in 0..2 {
        let heap = Arc::clone(&heap);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut n = 0i64;
            while !stop.load(Ordering::Relaxed) {
                let t = Tuple::new(vec![Value::Int(10_000 + w * 100_000 + n), Value::from("w")]);
                heap.insert(&t.to_bytes()).unwrap();
                n += 1;
            }
            n
        }));
    }
    // Readers verify the stable tuples and run scans.
    let mut readers = Vec::new();
    for _ in 0..3 {
        let heap = Arc::clone(&heap);
        let stable = stable.clone();
        readers.push(std::thread::spawn(move || {
            for round in 0..30 {
                for (rid, k) in stable.iter().skip(round % 7).step_by(7) {
                    let bytes = heap.get(*rid).unwrap();
                    let t = Tuple::from_bytes(&bytes).unwrap();
                    assert_eq!(t.get(0).unwrap().as_int(), Some(*k));
                }
                let mut seen = 0u64;
                heap.scan_pages(|_| false, |_, _| seen += 1).unwrap();
                assert!(seen >= 500);
            }
        }));
    }
    for r in readers {
        r.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let written: i64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(heap.live_tuples(), 500 + written as u64);
}

#[test]
fn pool_eviction_pressure_is_linearizable_per_page() {
    // Many threads hammer a few pages through a tiny pool; each page holds
    // a per-page counter only its owner thread increments, so values must
    // never regress.
    let pool = BufferPool::new(
        DiskManager::new(CostModel::free()),
        BufferPoolConfig::lru(4),
    );
    let mut pids = Vec::new();
    for _ in 0..16 {
        let (pid, g) = pool.new_page().unwrap();
        drop(g);
        pids.push(pid);
    }
    let mut handles = Vec::new();
    for (t, &pid) in pids.iter().enumerate().take(8) {
        let pool = Arc::clone(&pool);
        handles.push(std::thread::spawn(move || {
            let mut last = 0u64;
            for _ in 0..200 {
                let mut w = pool.fetch_write(pid).unwrap();
                let mut val = u64::from_le_bytes(w[..8].try_into().unwrap());
                assert!(val >= last, "thread {t}: page value regressed");
                val += 1;
                last = val;
                w[..8].copy_from_slice(&val.to_le_bytes());
            }
            last
        }));
    }
    // Background readers on the remaining pages create eviction traffic.
    for &pid in pids.iter().skip(8) {
        let pool = Arc::clone(&pool);
        handles.push(std::thread::spawn(move || {
            let mut acc = 0u64;
            for _ in 0..200 {
                let r = pool.fetch_read(pid).unwrap();
                acc = acc.wrapping_add(u64::from(r[9]));
            }
            acc
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // Final values persisted.
    for &pid in pids.iter().take(8) {
        let r = pool.fetch_read(pid).unwrap();
        assert_eq!(u64::from_le_bytes(r[..8].try_into().unwrap()), 200);
    }
}

// ---------------------------------------------------------------------------
// Engine level: concurrent clients over one shared Database.
// ---------------------------------------------------------------------------

const ROWS: i64 = 4_000;
const DOMAIN: i64 = 400;
const COVERED_HI: i64 = 99;

/// `t(k, pad)` with `k = i % DOMAIN` round-robin (every page mixes covered
/// and uncovered keys), partial index covering `0..=COVERED_HI`, unlimited
/// buffer so the final buffered state is order-independent.
fn shared_db() -> Arc<Database> {
    let db = Database::new(EngineConfig {
        pool_frames: 2048,
        cost_model: CostModel::free(),
        space: SpaceConfig {
            max_bytes: None,
            i_max: 1_000_000,
            seed: 23,
            ..Default::default()
        },
        ..Default::default()
    });
    db.create_table("t", Schema::new(vec![Column::int("k"), Column::str("pad")]))
        .unwrap();
    for i in 0..ROWS {
        db.insert(
            "t",
            &Tuple::new(vec![
                Value::Int(i % DOMAIN),
                Value::from("x".repeat(80 + (i as usize * 11) % 40)),
            ]),
        )
        .unwrap();
    }
    db.create_partial_index(
        "t",
        "k",
        Coverage::IntRange {
            lo: 0,
            hi: COVERED_HI,
        },
        IndexBackend::BTree,
        Some(BufferConfig::default()),
    )
    .unwrap();
    db.into_shared()
}

/// Ground truth for a point query, decoded straight from the heap.
fn truth(db: &Database, value: i64) -> Vec<Rid> {
    let table = db.table("t").unwrap();
    let mut rids: Vec<Rid> = table
        .scan_all()
        .unwrap()
        .into_iter()
        .filter(|(_, t)| t.get(0).unwrap().as_int() == Some(value))
        .map(|(rid, _)| rid)
        .collect();
    rids.sort_unstable();
    rids
}

/// Many clients fire overlapping covered/uncovered point and range queries
/// at one database. Every single result must equal the heap ground truth
/// (the heap is frozen — readers only), even though the uncovered queries'
/// indexing scans concurrently build the Index Buffer through the shared
/// staged-apply write sections, racing to index the same pages.
#[test]
fn concurrent_read_queries_match_ground_truth() {
    let db = shared_db();
    std::thread::scope(|s| {
        for c in 0..4i64 {
            let client = ClientHandle::new(Arc::clone(&db));
            s.spawn(move || {
                for i in 0..60i64 {
                    // Overlapping streams: every client hits some common
                    // values (the double-index races) and some of its own.
                    let v = ((i * 13 + c * 7) % DOMAIN + DOMAIN) % DOMAIN;
                    let out = client.execute(&Query::on("t", "k").eq(v)).unwrap();
                    let mut got = out.result.rids.clone();
                    got.sort_unstable();
                    assert_eq!(got, truth(client.db(), v), "client {c} value {v}");
                    if i % 9 == 0 {
                        let lo = (i * 31 + c) % (DOMAIN - 50);
                        let out = client
                            .execute(&Query::on("t", "k").between(lo, lo + 40))
                            .unwrap();
                        let want: usize = (lo..=lo + 40).map(|v| truth(client.db(), v).len()).sum();
                        assert_eq!(out.result.count(), want, "client {c} range [{lo}, +40]");
                    }
                }
            });
        }
    });
    // Unlimited buffer + frozen heap: whatever the interleaving, the final
    // state is "every page indexed" — and a follow-up scan skips everything.
    let out = db.execute(&Query::on("t", "k").eq(COVERED_HI + 1)).unwrap();
    assert_eq!(out.metrics.scan.unwrap().pages_read, 0, "fully buffered");
    db.check_space_invariants();
    #[cfg(feature = "invariant-checks")]
    db.verify_invariants().unwrap();
}

/// Linearizability under writes: one DML client mutates its own private key
/// band while read clients hammer the stable band. Stable-band results must
/// equal the pre-computed truth at every step; afterwards the shadow model
/// re-derives every counter from the heap.
#[test]
fn concurrent_dml_and_reads_stay_linearizable() {
    let db = shared_db();
    // The writer works exclusively on keys >= WRITER_LO; readers only query
    // below it, so their ground truth is immutable while the writer runs.
    const WRITER_LO: i64 = 300;
    let stable_truth: Vec<(i64, Vec<Rid>)> = (COVERED_HI - 20..WRITER_LO - 50)
        .step_by(17)
        .map(|v| (v, truth(&db, v)))
        .collect();
    std::thread::scope(|s| {
        let writer = ClientHandle::new(Arc::clone(&db));
        s.spawn(move || {
            let mut mine: Vec<Rid> = Vec::new();
            for i in 0..120i64 {
                match i % 4 {
                    0 | 1 => {
                        let k = WRITER_LO + (i * 29) % (DOMAIN - WRITER_LO);
                        mine.push(
                            writer
                                .insert("t", &Tuple::new(vec![Value::Int(k), Value::from("w")]))
                                .unwrap(),
                        );
                    }
                    2 if !mine.is_empty() => {
                        let rid = mine.swap_remove((i as usize * 7) % mine.len());
                        writer.delete("t", rid).unwrap();
                    }
                    _ if !mine.is_empty() => {
                        let idx = (i as usize * 5) % mine.len();
                        let k = WRITER_LO + (i * 41) % (DOMAIN - WRITER_LO);
                        let moved = writer
                            .update(
                                "t",
                                mine[idx],
                                &Tuple::new(vec![Value::Int(k), Value::from("w2")]),
                            )
                            .unwrap();
                        mine[idx] = moved;
                    }
                    _ => {}
                }
            }
        });
        for c in 0..3usize {
            let client = ClientHandle::new(Arc::clone(&db));
            let stable_truth = &stable_truth;
            s.spawn(move || {
                for round in 0..25 {
                    for (v, want) in stable_truth.iter().skip((c + round) % 3).step_by(3) {
                        let out = client.execute(&Query::on("t", "k").eq(*v)).unwrap();
                        let mut got = out.result.rids.clone();
                        got.sort_unstable();
                        assert_eq!(&got, want, "client {c} stable value {v}");
                    }
                }
            });
        }
    });
    db.check_space_invariants();
    #[cfg(feature = "invariant-checks")]
    db.verify_invariants().unwrap();
}

/// Snapshot-vs-DDL race (PR 8 satellite): lock-free fast-path readers keep
/// taking space snapshots while one thread registers new Index Buffers
/// (each `register` bumps the roster generation) and another churns a hot
/// buffer's counters through full write sections. Fail-closed means a
/// reader is never served a view the protocol cannot vouch for:
///
/// * the hot buffer — whose counters are never zero — must never appear
///   fully skippable, no matter how the snapshot raced the writer;
/// * DDL-born buffers are registered fully skippable and must appear so in
///   every snapshot that contains them;
/// * once a reader has observed the DDL thread's completion flag
///   (`Release`/`Acquire`), `space_snapshot` may no longer validate any
///   pre-DDL cached snapshot — the roster it returns must be complete.
///
/// The CI `invariants` job re-runs this under `--features invariant-checks`,
/// which adds the cross-shard consistency sweep at every churn step.
#[test]
fn snapshot_fast_path_fails_closed_under_concurrent_ddl() {
    use adaptive_index_buffer::core::ShardedSpace;

    const HEAP_PAGES: u32 = 4;
    const DDL_BUFFERS: usize = 48;

    let space = Arc::new(ShardedSpace::new(SpaceConfig {
        shards: 4,
        ..SpaceConfig::default()
    }));
    let hot = space.register("hot", BufferConfig::default(), vec![3; HEAP_PAGES as usize]);
    let ddl_done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        {
            let space = Arc::clone(&space);
            let ddl_done = Arc::clone(&ddl_done);
            s.spawn(move || {
                for i in 0..DDL_BUFFERS {
                    space.register(
                        format!("ddl-{i}"),
                        BufferConfig::default(),
                        vec![0; HEAP_PAGES as usize],
                    );
                }
                ddl_done.store(true, Ordering::Release);
            });
        }
        {
            // Churn writer: full write sections on the hot buffer's shard.
            // Each one parks the epoch sentinel, so snapshots racing it
            // must rebuild rather than validate a mid-write view. Counters
            // alternate but never reach zero.
            let space = Arc::clone(&space);
            let ddl_done = Arc::clone(&ddl_done);
            s.spawn(move || {
                let shard = space.shard_of(hot);
                let mut flip = false;
                while !ddl_done.load(Ordering::Acquire) {
                    let fill = if flip { 5 } else { 3 };
                    space
                        .shard_write(shard)
                        .reset_counters(hot, vec![fill; HEAP_PAGES as usize]);
                    flip = !flip;
                    #[cfg(feature = "invariant-checks")]
                    space.check_invariants();
                }
            });
        }
        for r in 0..3usize {
            let space = Arc::clone(&space);
            let ddl_done = Arc::clone(&ddl_done);
            s.spawn(move || loop {
                let done = ddl_done.load(Ordering::Acquire);
                let snap = space.space_snapshot();
                let mut roster = 0usize;
                for buf in snap.buffers() {
                    roster += 1;
                    if buf.id() == hot {
                        assert!(
                            !buf.fully_skippable(HEAP_PAGES),
                            "reader {r}: hot buffer served as fast-path skippable"
                        );
                    } else {
                        assert!(
                            buf.fully_skippable(HEAP_PAGES),
                            "reader {r}: DDL buffer {} visible but not skippable",
                            buf.id()
                        );
                    }
                }
                if done {
                    assert_eq!(
                        roster,
                        1 + DDL_BUFFERS,
                        "reader {r}: snapshot taken after DDL completed is missing buffers"
                    );
                    break;
                }
            });
        }
    });

    let snap = space.space_snapshot();
    assert!(space.validate(&snap), "quiescent snapshot must validate");
    assert_eq!(snap.buffers().count(), 1 + DDL_BUFFERS);
    assert_eq!(space.num_buffers(), 1 + DDL_BUFFERS);
    #[cfg(feature = "invariant-checks")]
    space.check_invariants();
}
