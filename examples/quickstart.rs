//! Quickstart: create a table, a partial index with an Adaptive Index
//! Buffer, and watch queries that miss the index get cheap.
//!
//! Run with `cargo run --release --example quickstart`.

use aib_core::BufferConfig;
use aib_engine::{AccessPath, Database, EngineConfig, Query};
use aib_index::{Coverage, IndexBackend};
use aib_storage::{Column, Schema, Tuple, Value};

fn main() {
    // A small buffer pool relative to the table, so table scans actually
    // pay simulated disk I/O (as a big table would).
    let db = Database::new(EngineConfig {
        pool_frames: 64,
        ..Default::default()
    });

    // A table of orders: id, amount, and a payload column.
    db.create_table(
        "orders",
        Schema::new(vec![
            Column::int("id"),
            Column::int("amount"),
            Column::str("note"),
        ]),
    )
    .unwrap();
    for i in 0..50_000i64 {
        let amount = (i * 7919) % 10_000; // pseudo-random amounts 0..10000
        db.insert(
            "orders",
            &Tuple::new(vec![
                Value::Int(i),
                Value::Int(amount),
                Value::from(format!("order #{i}")),
            ]),
        )
        .expect("insert");
    }

    // A partial index on `amount` covering only small amounts (the
    // frequently queried range), plus an Adaptive Index Buffer that will
    // back queries outside that range.
    db.create_partial_index(
        "orders",
        "amount",
        Coverage::IntRange { lo: 0, hi: 999 },
        IndexBackend::BTree,
        Some(BufferConfig::default()),
    )
    .expect("index creation");

    // A covered query hits the partial index.
    let (r, m) = db
        .execute(&Query::on("orders", "amount").eq(500i64))
        .unwrap()
        .into_parts();
    println!(
        "amount=500: {:?}, {} rows, {} simulated µs",
        r.path,
        r.count(),
        m.simulated_us()
    );
    assert_eq!(r.path, AccessPath::PartialIndex);

    // An uncovered query scans — and builds the Index Buffer as it goes.
    let (r, m) = db
        .execute(&Query::on("orders", "amount").eq(5_000i64))
        .unwrap()
        .into_parts();
    let scan = m.scan.as_ref().unwrap();
    println!(
        "amount=5000 (1st): {:?}, {} rows, {} simulated µs, {} pages read, {} pages newly indexed",
        r.path,
        r.count(),
        m.simulated_us(),
        scan.pages_read,
        scan.pages_indexed
    );

    // The second uncovered query skips every completed page.
    let (r, m) = db
        .execute(&Query::on("orders", "amount").eq(7_777i64))
        .unwrap()
        .into_parts();
    let scan = m.scan.as_ref().unwrap();
    println!(
        "amount=7777 (2nd): {:?}, {} rows, {} simulated µs, {} pages read, {} pages skipped",
        r.path,
        r.count(),
        m.simulated_us(),
        scan.pages_read,
        scan.pages_skipped
    );
    assert!(
        scan.pages_skipped > 0,
        "the Index Buffer made pages skippable"
    );

    println!(
        "\nIndex Buffer now holds {} entries across {} partitions",
        db.space_shard(0).buffer(0).num_entries(),
        db.space_shard(0).buffer(0).num_partitions()
    );
}
