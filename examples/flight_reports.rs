//! The paper's motivating example (Figures 2 and 4): a flight on-time
//! database whose airport column is partially indexed for U.S. airports.
//! A report provider suddenly starts selling reports about German airports
//! — queries for `FRA` cannot use the partial index and degrade to table
//! scans until the Index Buffer steps in.
//!
//! Run with `cargo run --release --example flight_reports`.

use aib_core::BufferConfig;
use aib_engine::{AccessPath, Database, Query};
use aib_index::{Coverage, IndexBackend};
use aib_storage::{Column, Schema, Tuple, Value};
use std::collections::BTreeSet;

const US_AIRPORTS: &[&str] = &["ORD", "JFK", "LAX", "ATL", "DFW", "DEN", "SFO", "SEA"];
const INTL_AIRPORTS: &[&str] = &["FRA", "HEL", "LHR", "CDG", "NRT", "SYD", "GRU", "DXB"];

fn main() {
    // A pool smaller than the flights table, so scans are disk-bound.
    let mut db = Database::new(aib_engine::EngineConfig {
        pool_frames: 64,
        ..Default::default()
    });
    db.create_table(
        "flights",
        Schema::new(vec![
            Column::int("flight_id"),
            Column::str("airport"),
            Column::int("delay_minutes"),
            Column::str("details"),
        ]),
    )
    .unwrap();

    // Mostly U.S. flights (the customer base), some international.
    let mut n = 0i64;
    for round in 0..4_000 {
        for (i, &ap) in US_AIRPORTS.iter().enumerate() {
            if (round + i) % 2 == 0 {
                insert_flight(&mut db, &mut n, ap, round);
            }
        }
        for (i, &ap) in INTL_AIRPORTS.iter().enumerate() {
            if (round + i) % 8 == 0 {
                insert_flight(&mut db, &mut n, ap, round);
            }
        }
    }
    println!("loaded {n} flights");

    // Partial index on airport covering U.S. airports only (Fig. 2).
    let coverage = Coverage::Set(
        US_AIRPORTS
            .iter()
            .map(|&a| Value::from(a))
            .collect::<BTreeSet<_>>(),
    );
    db.create_partial_index(
        "flights",
        "airport",
        coverage,
        IndexBackend::BTree,
        Some(BufferConfig::default()),
    )
    .unwrap();

    // U.S. report: the partial index answers it.
    let (r, m) = db
        .execute(&Query::on("flights", "airport").eq("ORD"))
        .unwrap()
        .into_parts();
    println!(
        "ORD report: {:?}, {} flights, {} simulated µs",
        r.path,
        r.count(),
        m.simulated_us()
    );
    assert_eq!(r.path, AccessPath::PartialIndex);

    // First German report: full scan — but the Index Buffer indexes the
    // remaining unindexed tuples of the pages it passes (Fig. 4).
    let (r, m) = db
        .execute(&Query::on("flights", "airport").eq("FRA"))
        .unwrap()
        .into_parts();
    let s = m.scan.as_ref().unwrap().clone();
    println!(
        "FRA report (1st): {:?}, {} flights, {} simulated µs, {} pages read",
        r.path,
        r.count(),
        m.simulated_us(),
        s.pages_read
    );
    let first_cost = m.simulated_us();

    // Subsequent international reports skip the completed pages.
    for ap in ["FRA", "HEL", "CDG"] {
        let (r, m) = db
            .execute(&Query::on("flights", "airport").eq(ap))
            .unwrap()
            .into_parts();
        let s = m.scan.as_ref().unwrap();
        println!(
            "{ap} report: {:?}, {} flights, {} simulated µs, {} pages skipped of {}",
            r.path,
            r.count(),
            m.simulated_us(),
            s.pages_skipped,
            s.pages_skipped + s.pages_read
        );
        assert!(
            m.simulated_us() <= first_cost,
            "buffered scans never cost more than the cold scan"
        );
    }

    println!(
        "\nIndex Buffer: {} entries covering {} pages — the German reports now run at index speed",
        db.space_shard(0).buffer(0).num_entries(),
        db.space_shard(0).buffer(0).num_buffered_pages()
    );
}

fn insert_flight(db: &mut Database, n: &mut i64, airport: &str, round: usize) {
    *n += 1;
    let delay = ((*n * 31 + round as i64) % 180) - 30;
    db.insert(
        "flights",
        &Tuple::new(vec![
            Value::Int(*n),
            Value::from(airport),
            Value::Int(delay),
            Value::from(format!("flight {n} via {airport}, round {round}")),
        ]),
    )
    .expect("insert flight");
}
