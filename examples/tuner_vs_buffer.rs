//! The paper's core pitch, end to end: a workload shift burdens the system
//! twice — adaptation cost plus degraded queries — for the whole
//! control-loop delay of the online index tuner. The Adaptive Index Buffer
//! bridges exactly that gap.
//!
//! This example runs the same shifting workload twice on a tuned partial
//! index: once without an Index Buffer and once with one, and compares the
//! cumulative simulated I/O during the adaptation window.
//!
//! Run with `cargo run --release --example tuner_vs_buffer`.

use aib_core::BufferConfig;
use aib_engine::{Database, EngineConfig, Query, TunerConfig, WorkloadRecorder};
use aib_index::{Coverage, IndexBackend};
use aib_storage::{Column, CostModel, Schema, Tuple, Value};

const ROWS: i64 = 40_000;
const HOT_VALUES: i64 = 12; // values per workload phase
const QUERIES: usize = 360;
const SHIFT_AT: usize = 180;

fn build(with_buffer: bool) -> Database {
    let db = Database::new(EngineConfig {
        pool_frames: 96,
        cost_model: CostModel::default(),
        ..Default::default()
    });
    db.create_table("t", Schema::new(vec![Column::int("k"), Column::str("pad")]))
        .unwrap();
    for i in 0..ROWS {
        // 2,000 distinct keys (~20 rows each), so an index hit is far
        // cheaper than a scan; the workload's hot set is keys 1..=24.
        let k = (i * 2654435761 % 2000) + 1;
        db.insert(
            "t",
            &Tuple::new(vec![Value::Int(k), Value::from("#".repeat(120))]),
        )
        .unwrap();
    }
    db.create_partial_index(
        "t",
        "k",
        Coverage::empty_set(),
        IndexBackend::BTree,
        with_buffer.then(BufferConfig::default),
    )
    .unwrap();
    // Window sized so a uniformly queried hot value reaches the threshold
    // (expected ~7.5 occurrences of each of the 12 hot keys per window).
    db.attach_tuner(
        "t",
        "k",
        TunerConfig {
            window: 90,
            threshold: 6,
            capacity: 12,
        },
    )
    .unwrap();
    db
}

fn run(db: &mut Database) -> WorkloadRecorder {
    let mut rec = WorkloadRecorder::new();
    let mut x = 0x1234_5678u64;
    for q in 0..QUERIES {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        // Phase 1 queries keys 1..=12, phase 2 keys 13..=24.
        let base = if q < SHIFT_AT { 1 } else { HOT_VALUES + 1 };
        let k = base + (x % HOT_VALUES as u64) as i64;
        rec.record(&db.execute(&Query::on("t", "k").eq(k)).unwrap());
    }
    rec
}

fn window_cost(rec: &WorkloadRecorder, lo: usize, hi: usize) -> u64 {
    rec.records()[lo..hi].iter().map(|m| m.simulated_us()).sum()
}

fn main() {
    let mut plain = build(false);
    let plain_rec = run(&mut plain);
    let mut buffered = build(true);
    let buffered_rec = run(&mut buffered);

    let windows = [
        ("warm-up (tuner adapting from scratch)", 0, 60),
        ("steady phase 1 (tuner adapted)", 120, SHIFT_AT),
        ("adaptation window after the shift", SHIFT_AT, SHIFT_AT + 60),
        ("steady phase 2", QUERIES - 60, QUERIES),
    ];
    println!("cumulative simulated I/O time (µs) per workload window:");
    println!(
        "{:<42} {:>14} {:>14} {:>8}",
        "window", "tuner only", "tuner+buffer", "ratio"
    );
    for (label, lo, hi) in windows {
        let p = window_cost(&plain_rec, lo, hi);
        let b = window_cost(&buffered_rec, lo, hi);
        println!(
            "{:<42} {:>14} {:>14} {:>7.1}x",
            label,
            p,
            b,
            p as f64 / b.max(1) as f64
        );
    }

    let shift_plain = window_cost(&plain_rec, SHIFT_AT, SHIFT_AT + 60);
    let shift_buffered = window_cost(&buffered_rec, SHIFT_AT, SHIFT_AT + 60);
    println!(
        "\nDuring the control-loop delay the Index Buffer cut scan cost by {:.1}x —\n\
         the 'double burden' of workload changes (paper §I) is what it absorbs.",
        shift_plain as f64 / shift_buffered.max(1) as f64
    );
    assert!(
        shift_buffered < shift_plain,
        "the buffer must help during the shift"
    );
}
