//! Operational tooling around the Index Buffer: `explain` (what would this
//! query cost right now?), vacuum (drain sparse pages through full Table I
//! maintenance), and a disk-resident paged partial index.
//!
//! Run with `cargo run --release --example explain_and_vacuum`.

use aib_core::BufferConfig;
use aib_engine::{Database, EngineConfig, Query};
use aib_index::Coverage;
use aib_storage::{Column, Schema, Tuple, Value};

fn main() {
    let db = Database::new(EngineConfig {
        pool_frames: 96,
        ..Default::default()
    });
    db.create_table(
        "events",
        Schema::new(vec![Column::int("kind"), Column::str("payload")]),
    )
    .unwrap();
    for i in 0..30_000i64 {
        db.insert(
            "events",
            &Tuple::new(vec![
                Value::Int(i % 500),
                Value::from("e".repeat(1 + (i as usize * 13) % 200)),
            ]),
        )
        .unwrap();
    }
    // A *disk-resident* partial index: its nodes share the buffer pool with
    // the table, so probes cost real page I/O.
    db.create_paged_partial_index(
        "events",
        "kind",
        Coverage::IntRange { lo: 0, hi: 99 },
        Some(BufferConfig::default()),
    )
    .unwrap();

    let show = |db: &Database, q: &Query, label: &str| {
        let e = db.explain(q).unwrap();
        println!("{label:<38} => {}", e.summary());
        e
    };

    println!("-- explain before any query --");
    show(
        &db,
        &Query::on("events", "kind").eq(42i64),
        "covered kind=42",
    );
    let cold = show(
        &db,
        &Query::on("events", "kind").eq(300i64),
        "uncovered kind=300 (cold)",
    );
    assert!(cold.pages_to_read > 0);

    // Execute once; the buffer completes pages.
    db.execute(&Query::on("events", "kind").eq(300i64)).unwrap();
    println!("\n-- explain after one indexing scan --");
    let warm = show(
        &db,
        &Query::on("events", "kind").eq(301i64),
        "uncovered kind=301 (warm)",
    );
    assert_eq!(warm.pages_to_read, 0, "the whole table became skippable");

    // Punch holes: delete 60% of the uncovered tuples, then vacuum.
    let victims: Vec<_> = db
        .table("events")
        .unwrap()
        .scan_all()
        .unwrap()
        .into_iter()
        .filter(|(_, t)| t.get(0).unwrap().as_int().unwrap() >= 100)
        .map(|(rid, _)| rid)
        .collect();
    for rid in victims.iter().take(victims.len() * 3 / 5) {
        db.delete("events", *rid).unwrap();
    }
    let pages_before = db.table("events").unwrap().num_pages();
    let (drained, moved) = db.vacuum("events", 0.7).unwrap();
    println!(
        "\n-- vacuum: drained {drained} sparse pages, relocated {moved} tuples \
         (of {pages_before} pages) --"
    );
    assert!(drained > 0);

    // Everything still answers correctly after the relocations.
    let (r, _) = db
        .execute(&Query::on("events", "kind").eq(301i64))
        .unwrap()
        .into_parts();
    let expected = db
        .table("events")
        .unwrap()
        .scan_all()
        .unwrap()
        .iter()
        .filter(|(_, t)| t.get(0).unwrap().as_int() == Some(301))
        .count();
    assert_eq!(r.count(), expected);
    println!("kind=301 still returns {expected} rows after vacuum — Table I held up.");
}
