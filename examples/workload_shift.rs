//! Workload shift across columns: three Index Buffers competing for a
//! bounded Index Buffer Space (the scenario of the paper's experiment 3,
//! at a reduced scale).
//!
//! Run with `cargo run --release --example workload_shift`.

use aib_core::{BufferConfig, SpaceConfig};
use aib_engine::{Database, EngineConfig, Query};
use aib_index::{Coverage, IndexBackend};
use aib_storage::{CostModel, DEFAULT_ENTRY_FOOTPRINT};
use aib_workload::{experiment3_queries, TableSpec, SWITCH_AT};

fn main() {
    let spec = TableSpec::scaled(60_000, 1);
    let db = Database::new(EngineConfig {
        pool_frames: 128,
        cost_model: CostModel::default(),
        space: SpaceConfig {
            // Bounded space: enough for ~1.7 of the 3 columns' uncovered
            // tuples, so the buffers must compete.
            max_bytes: Some((spec.rows as f64 * 1.6) as usize * DEFAULT_ENTRY_FOOTPRINT),
            i_max: (spec.rows / 100) as u32,
            seed: 5,
            ..Default::default()
        },
        ..Default::default()
    });

    db.create_table("eval", spec.schema()).unwrap();
    for t in spec.tuples() {
        db.insert("eval", &t).unwrap();
    }
    let (lo, hi) = spec.covered_range();
    for col in ["A", "B", "C"] {
        db.create_partial_index(
            "eval",
            col,
            Coverage::IntRange { lo, hi },
            IndexBackend::BTree,
            Some(BufferConfig {
                partition_pages: (spec.rows / 50) as u32,
                ..Default::default()
            }),
        )
        .unwrap();
    }

    println!("mix A:B:C = 1/2:1/3:1/6, flipping to 1/6:1/3:1/2 at query {SWITCH_AT}");
    println!("query  column  entries(A)  entries(B)  entries(C)");
    let queries = experiment3_queries(&spec, 200, 42);
    for (i, q) in queries.iter().enumerate() {
        let (_, m) = db
            .execute(&Query::on("eval", &q.column).eq(q.value))
            .unwrap()
            .into_parts();
        if i % 10 == 9 || i + 1 == queries.len() {
            println!(
                "{:>5}  {:^6}  {:>10}  {:>10}  {:>10}",
                i, q.column, m.buffer_entries[0], m.buffer_entries[1], m.buffer_entries[2]
            );
        }
    }

    let final_entries: Vec<usize> = (0..3)
        .map(|b| db.space_shard(b).buffer(b).num_entries())
        .collect();
    println!(
        "\nAfter the flip, the space manager displaced A's partitions in favour of C: {final_entries:?}"
    );
    assert!(
        final_entries[2] > final_entries[0],
        "C must out-occupy A after the shift"
    );
}
