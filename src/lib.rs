//! # Adaptive Index Buffer
//!
//! A from-scratch Rust reproduction of *"Adaptive Index Buffer"* (Voigt,
//! Jaekel, Kissinger, Lehner — IEEE ICDE Workshops 2012, DOI
//! 10.1109/ICDEW.2012.39).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`storage`] — slotted pages, simulated disk, buffer pool, heap files.
//! * [`index`] — B+-tree, hash index, partial secondary indexes.
//! * [`core`] — the paper's contribution: the Adaptive Index Buffer.
//! * [`engine`] — a mini database engine wiring it all together, plus the
//!   online partial-index tuner the buffer is designed to back up.
//! * [`workload`] — data and query generators for the paper's evaluation.
//! * [`sim`] — stand-alone simulations for the motivating figures.
//!
//! See `README.md` for a quickstart and `DESIGN.md` / `EXPERIMENTS.md` for
//! the reproduction methodology.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use aib_core as core;
pub use aib_engine as engine;
pub use aib_index as index;
pub use aib_sim as sim;
pub use aib_storage as storage;
pub use aib_workload as workload;
